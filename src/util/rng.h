// Deterministic, seedable random number generation.
//
// All randomized workloads in this repository flow through `Rng` so that
// every experiment is reproducible from a 64-bit seed. The generator is
// xoshiro256**, seeded via splitmix64 (the construction recommended by
// the xoshiro authors).

#ifndef MSP_UTIL_RNG_H_
#define MSP_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace msp {

/// Advances a splitmix64 state and returns the next 64-bit output.
/// Exposed for seeding and for cheap hash mixing.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** pseudo-random generator with convenience sampling
/// helpers. Not thread-safe; create one per thread.
class Rng {
 public:
  /// Creates a generator whose entire stream is determined by `seed`.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64 random bits.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t UniformInt(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformInRange(uint64_t lo, uint64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a sample from Normal(mean, stddev) via Box-Muller.
  double Normal(double mean, double stddev);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (uint64_t i = values->size() - 1; i > 0; --i) {
      uint64_t j = UniformInt(i + 1);
      std::swap((*values)[i], (*values)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace msp

#endif  // MSP_UTIL_RNG_H_
