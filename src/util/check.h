// Lightweight CHECK/LOG facilities (no exceptions, no external deps).
//
// MSP_CHECK(cond)        — aborts with file:line when `cond` is false.
// MSP_CHECK_OK(expr)     — for bool-like statuses.
// MSP_DCHECK(cond)       — compiled out in NDEBUG builds.
// MSP_LOG(INFO) << ...   — line-buffered logging to stderr.
//
// The library is exception-free (Google style); contract violations are
// programming errors and terminate the process.

#ifndef MSP_UTIL_CHECK_H_
#define MSP_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace msp {
namespace internal {

// Accumulates a message and aborts the process on destruction.
// Used by the MSP_CHECK family; never instantiate directly.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "[CHECK failed] " << file << ":" << line << ": " << condition;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Severity tags for MSP_LOG.
enum class LogSeverity { kInfo, kWarning, kError };

// One log line; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line) {
    const char* tag = severity == LogSeverity::kInfo      ? "I"
                      : severity == LogSeverity::kWarning ? "W"
                                                          : "E";
    stream_ << tag << " " << file << ":" << line << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() { std::cerr << stream_.str() << std::endl; }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace msp

#define MSP_CHECK(condition)                                       \
  if (condition) {                                                 \
  } else /* NOLINT */                                              \
    ::msp::internal::CheckFailure(__FILE__, __LINE__, #condition)

#define MSP_CHECK_EQ(a, b) MSP_CHECK((a) == (b)) << " (" #a " vs " #b ") "
#define MSP_CHECK_NE(a, b) MSP_CHECK((a) != (b)) << " (" #a " vs " #b ") "
#define MSP_CHECK_LE(a, b) MSP_CHECK((a) <= (b)) << " (" #a " vs " #b ") "
#define MSP_CHECK_LT(a, b) MSP_CHECK((a) < (b)) << " (" #a " vs " #b ") "
#define MSP_CHECK_GE(a, b) MSP_CHECK((a) >= (b)) << " (" #a " vs " #b ") "
#define MSP_CHECK_GT(a, b) MSP_CHECK((a) > (b)) << " (" #a " vs " #b ") "

#ifdef NDEBUG
#define MSP_DCHECK(condition) \
  if (true) {                 \
  } else /* NOLINT */         \
    ::msp::internal::CheckFailure(__FILE__, __LINE__, #condition)
#else
#define MSP_DCHECK(condition) MSP_CHECK(condition)
#endif

#define MSP_LOG(severity)                                       \
  ::msp::internal::LogMessage(                                  \
      ::msp::internal::LogSeverity::k##severity, __FILE__, __LINE__)

#endif  // MSP_UTIL_CHECK_H_
