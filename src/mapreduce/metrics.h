// Metrics collected by one engine run.
//
// `shuffle_bytes` is the paper's communication cost: the total size of
// all record copies delivered to reducers. Load-balance numbers feed
// the parallelism tradeoff (tradeoff (ii) of the paper).

#ifndef MSP_MAPREDUCE_METRICS_H_
#define MSP_MAPREDUCE_METRICS_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace msp::mr {

/// Counters and timings of a single job execution.
struct JobMetrics {
  uint64_t input_records = 0;
  uint64_t map_output_records = 0;
  uint64_t shuffle_records = 0;  // record copies after routing
  uint64_t shuffle_bytes = 0;    // communication cost
  uint64_t output_records = 0;

  uint64_t num_reducers = 0;
  uint64_t non_empty_reducers = 0;
  uint64_t max_reducer_bytes = 0;
  double mean_reducer_bytes = 0.0;  // over non-empty reducers
  double reducer_peak_to_mean = 0.0;

  /// True when some reducer received more bytes than the configured
  /// capacity (only meaningful when a capacity was configured).
  bool capacity_violated = false;

  double map_seconds = 0.0;
  double shuffle_seconds = 0.0;
  double reduce_seconds = 0.0;
  double total_seconds = 0.0;

  /// Per-reducer delivered bytes (index == reducer index).
  std::vector<uint64_t> reducer_bytes;
  /// Per-reducer delivered record copies (index == reducer index).
  /// Together with `reducer_bytes` this is the engine-side ledger the
  /// cluster simulator reconciles against predicted churn.
  std::vector<uint64_t> reducer_records;
};

/// Deterministic makespan of scheduling `costs` on `workers` machines
/// with Longest-Processing-Time-first. Used to report hardware-
/// independent parallelism numbers in the benches.
uint64_t LptMakespan(const std::vector<uint64_t>& costs, std::size_t workers);

/// Publishes one run's counters into `registry` as mr.* series labeled
/// kind=<kind> (e.g. "reshuffle", "oracle"): jobs, shuffle bytes,
/// shuffle record copies. No-op when `registry` is null, so engine
/// callers can pass their sink through unconditionally.
void PublishJobMetrics(const JobMetrics& metrics, obs::Registry* registry,
                       std::string_view kind);

}  // namespace msp::mr

#endif  // MSP_MAPREDUCE_METRICS_H_
