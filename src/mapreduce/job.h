// User-facing interfaces of the MapReduce simulator: Mapper, the
// routing Partitioner, and the GroupReducer.
//
// The paper's "reducer" is a single application of the reduce function
// to one key with its values; the engine models this as one
// GroupReducer::Reduce call per reducer index. Replication — the heart
// of mapping schemas — happens in the Partitioner, which may route one
// intermediate record to many reducers.

#ifndef MSP_MAPREDUCE_JOB_H_
#define MSP_MAPREDUCE_JOB_H_

#include <cstdint>
#include <vector>

#include "mapreduce/types.h"

namespace msp::mr {

/// Transforms one input record into intermediate records.
class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Appends intermediate records for `input` to `out`. Must be
  /// thread-compatible: the engine calls Map concurrently on distinct
  /// inputs with distinct `out` buffers.
  virtual void Map(const KeyValue& input, KeyValueList* out) const = 0;
};

/// A Mapper that forwards its input unchanged (common for joins where
/// the inputs are already keyed records).
class IdentityMapper : public Mapper {
 public:
  void Map(const KeyValue& input, KeyValueList* out) const override {
    out->push_back(input);
  }
};

/// Routes an intermediate record to one or more reducers.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Appends the target reducer indices for a record with `key` to
  /// `out`. Must be deterministic and thread-compatible.
  virtual void Route(uint64_t key, std::vector<ReducerIndex>* out) const = 0;

  /// Total number of reducers this partitioner routes into.
  virtual ReducerIndex num_reducers() const = 0;
};

/// Classic hash partitioning: every key goes to exactly one reducer.
class HashPartitioner : public Partitioner {
 public:
  explicit HashPartitioner(ReducerIndex num_reducers)
      : num_reducers_(num_reducers) {}

  void Route(uint64_t key, std::vector<ReducerIndex>* out) const override;
  ReducerIndex num_reducers() const override { return num_reducers_; }

  /// The mixing function used (splitmix64 finalizer); exposed so tests
  /// can predict routing.
  static uint64_t Mix(uint64_t key);

 private:
  ReducerIndex num_reducers_;
};

/// Consumes one reducer's whole input group and emits output records.
class GroupReducer {
 public:
  virtual ~GroupReducer() = default;

  /// Processes the records routed to `reducer`. Called once per
  /// non-empty reducer, concurrently across reducers.
  virtual void Reduce(ReducerIndex reducer, const KeyValueList& group,
                      KeyValueList* out) const = 0;
};

/// Optional map-side pre-aggregation: invoked on each map task's
/// records bound for one reducer, before they cross the shuffle.
/// Shrinking `group` in place reduces the measured communication cost
/// (exactly like a Hadoop combiner). Must be semantically idempotent
/// with respect to the GroupReducer.
class Combiner {
 public:
  virtual ~Combiner() = default;

  /// May rewrite `group` (e.g., pre-sum counts). Called concurrently
  /// on distinct groups.
  virtual void Combine(ReducerIndex reducer, KeyValueList* group) const = 0;
};

}  // namespace msp::mr

#endif  // MSP_MAPREDUCE_JOB_H_
