#include "mapreduce/metrics.h"

#include <algorithm>
#include <queue>
#include <string>

namespace msp::mr {

void PublishJobMetrics(const JobMetrics& metrics, obs::Registry* registry,
                       std::string_view kind) {
  if (registry == nullptr) return;
  const obs::Labels labels = {{"kind", std::string(kind)}};
  registry->counter("mr.jobs_total", labels)->Inc();
  registry->counter("mr.shuffle_bytes_total", labels)
      ->Inc(metrics.shuffle_bytes);
  registry->counter("mr.shuffle_records_total", labels)
      ->Inc(metrics.shuffle_records);
}

uint64_t LptMakespan(const std::vector<uint64_t>& costs,
                     std::size_t workers) {
  if (costs.empty()) return 0;
  if (workers == 0) workers = 1;
  std::vector<uint64_t> sorted = costs;
  std::sort(sorted.begin(), sorted.end(), std::greater<uint64_t>());
  // Min-heap of worker finish times.
  std::priority_queue<uint64_t, std::vector<uint64_t>,
                      std::greater<uint64_t>>
      finish;
  for (std::size_t w = 0; w < workers; ++w) finish.push(0);
  for (uint64_t cost : sorted) {
    uint64_t earliest = finish.top();
    finish.pop();
    finish.push(earliest + cost);
  }
  uint64_t makespan = 0;
  while (!finish.empty()) {
    makespan = std::max(makespan, finish.top());
    finish.pop();
  }
  return makespan;
}

}  // namespace msp::mr
