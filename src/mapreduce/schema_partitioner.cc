#include "mapreduce/schema_partitioner.h"

#include <utility>

#include "util/check.h"

namespace msp::mr {

SchemaPartitioner::SchemaPartitioner(const MappingSchema& schema,
                                     std::size_t num_inputs,
                                     ReducerIndex base)
    : reducers_of_input_(num_inputs),
      num_reducers_(base + static_cast<ReducerIndex>(schema.num_reducers())) {
  for (std::size_t r = 0; r < schema.reducers.size(); ++r) {
    for (InputId id : schema.reducers[r]) {
      MSP_CHECK_LT(id, num_inputs);
      reducers_of_input_[id].push_back(base + static_cast<ReducerIndex>(r));
    }
  }
}

void SchemaPartitioner::Route(uint64_t key,
                              std::vector<ReducerIndex>* out) const {
  if (key >= reducers_of_input_.size()) return;
  const auto& targets = reducers_of_input_[key];
  out->insert(out->end(), targets.begin(), targets.end());
}

RoutingPartitioner::RoutingPartitioner(
    std::vector<std::vector<ReducerIndex>> routes, ReducerIndex num_reducers)
    : routes_(std::move(routes)), num_reducers_(num_reducers) {
  for (const auto& targets : routes_) {
    for (ReducerIndex r : targets) MSP_CHECK_LT(r, num_reducers_);
  }
}

void RoutingPartitioner::Route(uint64_t key,
                               std::vector<ReducerIndex>* out) const {
  if (key >= routes_.size()) return;
  const auto& targets = routes_[key];
  out->insert(out->end(), targets.begin(), targets.end());
}

}  // namespace msp::mr
