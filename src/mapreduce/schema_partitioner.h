// Partitioner driven by a mapping schema.
//
// This is the bridge between the paper's combinatorial object (the
// mapping schema) and the execution engine: intermediate records are
// keyed by input id, and each input id is routed to every reducer the
// schema assigned it to.

#ifndef MSP_MAPREDUCE_SCHEMA_PARTITIONER_H_
#define MSP_MAPREDUCE_SCHEMA_PARTITIONER_H_

#include <vector>

#include "core/schema.h"
#include "mapreduce/job.h"

namespace msp::mr {

/// Routes input id k to every reducer containing k in the schema.
/// Keys outside [0, num_inputs) are dropped (routed nowhere).
class SchemaPartitioner : public Partitioner {
 public:
  /// `num_inputs` bounds the id space; `base` offsets all reducer
  /// indices (useful when a schema occupies a slice of a larger job,
  /// as in skew join).
  SchemaPartitioner(const MappingSchema& schema, std::size_t num_inputs,
                    ReducerIndex base = 0);

  void Route(uint64_t key, std::vector<ReducerIndex>* out) const override;
  ReducerIndex num_reducers() const override { return num_reducers_; }

 private:
  std::vector<std::vector<ReducerIndex>> reducers_of_input_;
  ReducerIndex num_reducers_;
};

/// Routes through an explicit routing table: key k goes to exactly the
/// reducers listed in `routes[k]`; keys outside the table are dropped.
/// This is the engine's incremental re-partition hook: a caller that
/// has diffed two assignments can execute just the delta — one record
/// per moved copy, keyed by its position in the plan — instead of
/// re-running the whole job (used by the cluster simulator's
/// re-shuffle jobs).
class RoutingPartitioner : public Partitioner {
 public:
  /// `num_reducers` must be past every index appearing in `routes`.
  RoutingPartitioner(std::vector<std::vector<ReducerIndex>> routes,
                     ReducerIndex num_reducers);

  void Route(uint64_t key, std::vector<ReducerIndex>* out) const override;
  ReducerIndex num_reducers() const override { return num_reducers_; }

 private:
  std::vector<std::vector<ReducerIndex>> routes_;
  ReducerIndex num_reducers_;
};

}  // namespace msp::mr

#endif  // MSP_MAPREDUCE_SCHEMA_PARTITIONER_H_
