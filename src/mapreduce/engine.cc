#include "mapreduce/engine.h"

#include <algorithm>
#include <map>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/summary_stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace msp::mr {

namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

uint64_t HashPartitioner::Mix(uint64_t key) { return Mix64(key); }

void HashPartitioner::Route(uint64_t key,
                            std::vector<ReducerIndex>* out) const {
  MSP_CHECK_GT(num_reducers_, 0u);
  out->push_back(static_cast<ReducerIndex>(Mix(key) % num_reducers_));
}

MapReduceEngine::MapReduceEngine(EngineConfig config) : config_(config) {
  if (config_.num_workers == 0) {
    config_.num_workers = std::max<std::size_t>(
        1, std::thread::hardware_concurrency());
  }
  if (config_.map_batch_size == 0) config_.map_batch_size = 1;
}

JobMetrics MapReduceEngine::Run(const KeyValueList& inputs,
                                const Mapper& mapper,
                                const Partitioner& partitioner,
                                const GroupReducer& reducer,
                                KeyValueList* output) const {
  return Run(inputs, mapper, partitioner, /*combiner=*/nullptr, reducer,
             output);
}

JobMetrics MapReduceEngine::Run(const KeyValueList& inputs,
                                const Mapper& mapper,
                                const Partitioner& partitioner,
                                const Combiner* combiner,
                                const GroupReducer& reducer,
                                KeyValueList* output) const {
  MSP_CHECK(output != nullptr);
  JobMetrics metrics;
  metrics.input_records = inputs.size();
  metrics.num_reducers = partitioner.num_reducers();
  Stopwatch total_timer;

  // One pool serves all three phases — Wait() is a reusable barrier —
  // so a run spawns its workers once, not once per phase; with a
  // caller-provided pool (config.pool) it spawns none at all.
  std::optional<ThreadPool> owned_pool;
  ThreadPool& pool = config_.pool != nullptr
                         ? *config_.pool
                         : owned_pool.emplace(config_.num_workers);

  // ---- Map phase -------------------------------------------------
  Stopwatch phase_timer;
  const std::size_t num_batches =
      inputs.empty()
          ? 0
          : (inputs.size() + config_.map_batch_size - 1) /
                config_.map_batch_size;
  std::vector<KeyValueList> map_outputs(num_batches);
  {
    for (std::size_t b = 0; b < num_batches; ++b) {
      pool.Submit([&, b] {
        const std::size_t begin = b * config_.map_batch_size;
        const std::size_t end =
            std::min(begin + config_.map_batch_size, inputs.size());
        for (std::size_t i = begin; i < end; ++i) {
          mapper.Map(inputs[i], &map_outputs[b]);
        }
      });
    }
    pool.Wait();
  }
  for (const auto& batch : map_outputs) {
    metrics.map_output_records += batch.size();
  }
  metrics.map_seconds = phase_timer.ElapsedSeconds();

  // ---- Shuffle phase ---------------------------------------------
  phase_timer.Reset();
  const std::size_t num_reducers = partitioner.num_reducers();
  std::vector<KeyValueList> groups(num_reducers);
  metrics.reducer_bytes.assign(num_reducers, 0);
  metrics.reducer_records.assign(num_reducers, 0);
  {
    // Route batches in parallel into per-batch target lists (running
    // the map-side combiner if configured), then merge serially per
    // reducer (deterministic order: batch-major, reducer-minor).
    std::vector<std::vector<std::pair<ReducerIndex, KeyValue>>> routed(
        num_batches);
    for (std::size_t b = 0; b < num_batches; ++b) {
      pool.Submit([&, b] {
        std::vector<ReducerIndex> targets;
        if (combiner == nullptr) {
          for (const KeyValue& kv : map_outputs[b]) {
            targets.clear();
            partitioner.Route(kv.key, &targets);
            for (ReducerIndex r : targets) {
              MSP_CHECK_LT(r, num_reducers);
              routed[b].push_back({r, kv});
            }
          }
          return;
        }
        // Combiner path: gather this batch's records per reducer,
        // pre-aggregate, then enqueue the shrunken groups.
        std::map<ReducerIndex, KeyValueList> local;
        for (const KeyValue& kv : map_outputs[b]) {
          targets.clear();
          partitioner.Route(kv.key, &targets);
          for (ReducerIndex r : targets) {
            MSP_CHECK_LT(r, num_reducers);
            local[r].push_back(kv);
          }
        }
        for (auto& [r, group] : local) {
          combiner->Combine(r, &group);
          for (KeyValue& kv : group) {
            routed[b].push_back({r, std::move(kv)});
          }
        }
      });
    }
    pool.Wait();
    for (auto& batch : routed) {
      for (auto& [r, kv] : batch) {
        metrics.reducer_bytes[r] += kv.SizeBytes();
        ++metrics.reducer_records[r];
        ++metrics.shuffle_records;
        metrics.shuffle_bytes += kv.SizeBytes();
        groups[r].push_back(std::move(kv));
      }
    }
  }
  metrics.shuffle_seconds = phase_timer.ElapsedSeconds();

  // ---- Reduce phase ----------------------------------------------
  phase_timer.Reset();
  std::vector<KeyValueList> reduce_outputs(num_reducers);
  {
    for (std::size_t r = 0; r < num_reducers; ++r) {
      if (groups[r].empty()) continue;
      pool.Submit([&, r] {
        reducer.Reduce(static_cast<ReducerIndex>(r), groups[r],
                       &reduce_outputs[r]);
      });
    }
    pool.Wait();
  }
  for (auto& out : reduce_outputs) {
    metrics.output_records += out.size();
    output->insert(output->end(), std::make_move_iterator(out.begin()),
                   std::make_move_iterator(out.end()));
  }
  metrics.reduce_seconds = phase_timer.ElapsedSeconds();

  // ---- Summary ----------------------------------------------------
  std::vector<uint64_t> non_empty;
  for (std::size_t r = 0; r < num_reducers; ++r) {
    if (!groups[r].empty()) {
      non_empty.push_back(metrics.reducer_bytes[r]);
      if (config_.reducer_capacity != 0 &&
          metrics.reducer_bytes[r] > config_.reducer_capacity) {
        metrics.capacity_violated = true;
      }
    }
  }
  metrics.non_empty_reducers = non_empty.size();
  if (!non_empty.empty()) {
    const SummaryStats stats = SummaryStats::Compute(non_empty);
    metrics.max_reducer_bytes = static_cast<uint64_t>(stats.max());
    metrics.mean_reducer_bytes = stats.mean();
    metrics.reducer_peak_to_mean = stats.PeakToMeanRatio();
  }
  metrics.total_seconds = total_timer.ElapsedSeconds();
  return metrics;
}

}  // namespace msp::mr
