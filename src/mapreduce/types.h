// Core record types of the MapReduce simulator.
//
// The engine is deliberately concrete (64-bit logical keys, string
// payloads): the paper's cost model counts bytes moved between the map
// and reduce phases, and `value.size()` is exactly that unit.

#ifndef MSP_MAPREDUCE_TYPES_H_
#define MSP_MAPREDUCE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace msp::mr {

/// Index of a reducer within a job.
using ReducerIndex = uint32_t;

/// One record. `key` is the logical key the partitioner routes on
/// (e.g., an input id or a join key); `value` is the payload whose
/// size is charged as communication.
struct KeyValue {
  uint64_t key = 0;
  std::string value;

  uint64_t SizeBytes() const { return value.size(); }
};

/// A list of records.
using KeyValueList = std::vector<KeyValue>;

}  // namespace msp::mr

#endif  // MSP_MAPREDUCE_TYPES_H_
