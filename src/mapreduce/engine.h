// The in-memory MapReduce execution engine.
//
// A job runs in three phases, all parallel on a worker pool:
//   map     — Mapper::Map over input records,
//   shuffle — Partitioner::Route fan-out into per-reducer groups, with
//             byte-accurate communication accounting,
//   reduce  — GroupReducer::Reduce over each non-empty reducer group.
//
// This engine is the substitute for a cluster deployment (see
// docs/ARCHITECTURE.md): the quantities the paper reasons about — number of
// reducers, bytes shuffled, per-reducer load, achievable parallelism —
// are measured exactly.

#ifndef MSP_MAPREDUCE_ENGINE_H_
#define MSP_MAPREDUCE_ENGINE_H_

#include <cstdint>

#include "mapreduce/job.h"
#include "mapreduce/metrics.h"
#include "mapreduce/types.h"

namespace msp {
class ThreadPool;  // util/thread_pool.h
}

namespace msp::mr {

/// Engine configuration.
struct EngineConfig {
  /// Worker threads for the map and reduce phases (0 = hardware
  /// concurrency). Ignored when `pool` is set.
  std::size_t num_workers = 0;
  /// Optional caller-owned worker pool. When set, every phase of every
  /// Run executes on it and the engine spawns no threads of its own —
  /// batches of small jobs (the cluster simulator's delta re-shuffles)
  /// amortize worker spin-up across jobs instead of paying it three
  /// times per Run. Not owned; must outlive the engine's Run calls,
  /// and concurrent Runs must not share one pool (Wait() is a shared
  /// barrier).
  ThreadPool* pool = nullptr;
  /// Reducer capacity q in bytes; when non-zero the engine flags (but
  /// does not abort on) reducers whose delivered bytes exceed it.
  uint64_t reducer_capacity = 0;
  /// Records per map task (granularity of map parallelism).
  std::size_t map_batch_size = 1024;
};

/// Executes MapReduce jobs. Stateless between runs; safe to reuse.
class MapReduceEngine {
 public:
  explicit MapReduceEngine(EngineConfig config = {});

  /// Runs one job over `inputs`. Output records from all reducers are
  /// appended to `output` (order unspecified but deterministic given
  /// the same config). Returns the run's metrics.
  JobMetrics Run(const KeyValueList& inputs, const Mapper& mapper,
                 const Partitioner& partitioner, const GroupReducer& reducer,
                 KeyValueList* output) const;

  /// As above, with an optional map-side Combiner applied to each map
  /// task's per-reducer record group before the shuffle (`combiner`
  /// may be null).
  JobMetrics Run(const KeyValueList& inputs, const Mapper& mapper,
                 const Partitioner& partitioner, const Combiner* combiner,
                 const GroupReducer& reducer, KeyValueList* output) const;

  const EngineConfig& config() const { return config_; }

 private:
  EngineConfig config_;
};

}  // namespace msp::mr

#endif  // MSP_MAPREDUCE_ENGINE_H_
