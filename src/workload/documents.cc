#include "workload/documents.h"

#include <algorithm>
#include <set>

#include "util/check.h"
#include "util/rng.h"
#include "util/zipf.h"
#include "workload/sizes.h"

namespace msp::wl {

std::vector<Document> MakeDocuments(const DocumentConfig& config) {
  MSP_CHECK_GE(config.min_tokens, 1u);
  MSP_CHECK_LE(config.min_tokens, config.max_tokens);
  MSP_CHECK_GE(config.vocabulary, config.max_tokens)
      << "vocabulary too small for the largest document";
  Rng rng(config.seed);
  uint64_t derived_seed = config.seed;
  const std::vector<InputSize> lengths =
      ZipfSizes(config.count, config.min_tokens, config.max_tokens,
                config.length_skew, SplitMix64(&derived_seed));
  ZipfDistribution token_dist(config.vocabulary, config.token_skew);

  std::vector<Document> documents(config.count);
  for (std::size_t d = 0; d < config.count; ++d) {
    documents[d].id = static_cast<uint32_t>(d);
    std::set<uint32_t> tokens;
    while (tokens.size() < lengths[d]) {
      tokens.insert(static_cast<uint32_t>(token_dist.Sample(&rng) - 1));
    }
    documents[d].tokens.assign(tokens.begin(), tokens.end());
  }
  return documents;
}

double Jaccard(const Document& a, const Document& b) {
  if (a.tokens.empty() && b.tokens.empty()) return 1.0;
  std::size_t intersection = 0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.tokens.size() && ib < b.tokens.size()) {
    if (a.tokens[ia] == b.tokens[ib]) {
      ++intersection;
      ++ia;
      ++ib;
    } else if (a.tokens[ia] < b.tokens[ib]) {
      ++ia;
    } else {
      ++ib;
    }
  }
  const std::size_t uni = a.tokens.size() + b.tokens.size() - intersection;
  return uni == 0 ? 1.0 : static_cast<double>(intersection) / uni;
}

}  // namespace msp::wl
