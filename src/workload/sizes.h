// Input-size distributions for the assignment experiments.
//
// All generators are deterministic in the seed. Sizes are strictly
// positive and clamped so the generated instance is always feasible
// for the requested capacity semantics (callers still pick q).

#ifndef MSP_WORKLOAD_SIZES_H_
#define MSP_WORKLOAD_SIZES_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"

namespace msp::wl {

/// m copies of the same size w (the paper's equal-sized special case).
std::vector<InputSize> EqualSizes(std::size_t m, InputSize w);

/// Uniform integer sizes in [lo, hi].
std::vector<InputSize> UniformSizes(std::size_t m, InputSize lo, InputSize hi,
                                    uint64_t seed);

/// Heavy-tailed sizes: w = min(hi, lo * r) with r ~ Zipf(s) over
/// ranks 1..hi/lo. Most inputs are near `lo`; a few reach `hi` — the
/// "different-sized inputs" regime that motivates the paper.
std::vector<InputSize> ZipfSizes(std::size_t m, InputSize lo, InputSize hi,
                                 double skew, uint64_t seed);

/// Normal(mean, stddev) rounded and clamped into [lo, hi].
std::vector<InputSize> NormalSizes(std::size_t m, double mean, double stddev,
                                   InputSize lo, InputSize hi, uint64_t seed);

}  // namespace msp::wl

#endif  // MSP_WORKLOAD_SIZES_H_
