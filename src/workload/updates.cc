#include "workload/updates.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace msp::wl {

namespace {

using online::Side;
using online::Update;
using online::UpdateTrace;

// Mirror of the assigner's alive set while emitting, so the generator
// can pick valid remove/resize targets and keep feasibility.
struct AliveMirror {
  std::vector<InputId> ids;
  std::vector<InputSize> sizes;
  std::vector<Side> sides;

  std::size_t CountSide(Side side) const {
    std::size_t n = 0;
    for (Side s : sides) n += s == side ? 1 : 0;
    return n;
  }
  InputSize MaxSize() const {
    InputSize max = 0;
    for (InputSize w : sizes) max = std::max(max, w);
    return max;
  }
};

}  // namespace

UpdateTrace GenerateTrace(const TraceConfig& config) {
  MSP_CHECK_GT(config.capacity, 1u);
  MSP_CHECK_LE(config.capacity, online::kMaxCapacity);
  MSP_CHECK_GT(config.lo, 0u);
  MSP_CHECK_LE(config.lo, config.hi);
  // Sizes are clamped into [lo, q/2]; q < 2*lo would leave no feasible
  // size (pairs of lo-sized inputs overflow q), emitting adds the
  // assigner rejects — and since ids are numbered assuming every add
  // lands, later remove/resize events would desync onto wrong inputs.
  // Phrased as a division so lo >= 2^63 cannot wrap the comparison.
  MSP_CHECK_LE(config.lo, config.capacity / 2)
      << "trace capacity must fit a pair of lo-sized inputs";
  MSP_CHECK_GE(config.max_retune_factor, 1.0);
  MSP_CHECK_GT(config.burst_every, 0u);
  MSP_CHECK_GT(config.burst_size, 0u);
  MSP_CHECK_GT(config.osc_period, 0u);
  MSP_CHECK_GE(config.osc_factor, 1.0);

  Rng rng(config.seed);
  UpdateTrace trace;
  trace.x2y = config.x2y;
  trace.initial_capacity = config.capacity;

  InputSize q = config.capacity;
  AliveMirror alive;
  InputId next_id = 0;

  // Sizes track the live capacity: clamped into [lo, q/2] so every
  // pair of inputs always fits in one reducer. The rank count is
  // capped — ZipfDistribution materializes its CDF as one double per
  // rank, so an astronomic q/hi would otherwise allocate terabytes;
  // past ~10^6 distinct size ranks the extra granularity is noise.
  constexpr uint64_t kMaxZipfRanks = 1 << 20;
  const uint64_t ranks = std::max<uint64_t>(
      1, std::min<uint64_t>(
             kMaxZipfRanks,
             std::min<InputSize>(config.hi, q / 2) / config.lo));
  ZipfDistribution zipf(ranks, config.skew);
  auto draw_size = [&]() -> InputSize {
    const InputSize cap = std::max<InputSize>(config.lo, q / 2);
    const InputSize hi = std::min(config.hi, cap);
    return std::min<InputSize>(hi, config.lo * zipf.Sample(&rng));
  };
  auto emit_add = [&](Side side) {
    Update u = Update::Add(draw_size(), side);
    trace.updates.push_back(u);
    alive.ids.push_back(next_id++);
    alive.sizes.push_back(u.value);
    alive.sides.push_back(side);
  };

  for (std::size_t i = 0; i < config.initial_inputs; ++i) {
    const Side side =
        config.x2y && i % 2 == 1 ? Side::kY : Side::kX;
    emit_add(side);
  }

  const double total = config.p_add + config.p_remove + config.p_resize;
  MSP_CHECK_LE(total, 1.0 + 1e-9);

  // One event of the regular mix. Shapes that own the capacity channel
  // (flash crowd never retunes; oscillation retunes on its own clock)
  // rescale the roll so the retune branch is unreachable.
  const auto emit_mixed = [&](bool allow_retune) {
    if (!allow_retune && total <= 0.0) {
      // Degenerate mix (all probabilities zero) with the retune
      // channel closed: arrivals are the only event left.
      emit_add(config.x2y && rng.Bernoulli(0.5) ? Side::kY : Side::kX);
      return;
    }
    const double roll = allow_retune ? rng.UniformDouble()
                                     : rng.UniformDouble() * total;
    if (roll < config.p_add || alive.ids.empty()) {
      const Side side = config.x2y && rng.Bernoulli(0.5) ? Side::kY : Side::kX;
      emit_add(side);
      return;
    }
    if (roll < config.p_add + config.p_remove) {
      // Departure; keep at least min_alive inputs per side.
      const std::size_t pick = rng.UniformInt(alive.ids.size());
      const Side side = alive.sides[pick];
      const std::size_t side_count =
          config.x2y ? alive.CountSide(side) : alive.ids.size();
      if (side_count <= config.min_alive) {
        emit_add(side);  // too thin to shrink: arrival instead
        return;
      }
      trace.updates.push_back(Update::Remove(alive.ids[pick]));
      alive.ids.erase(alive.ids.begin() + pick);
      alive.sizes.erase(alive.sizes.begin() + pick);
      alive.sides.erase(alive.sides.begin() + pick);
      return;
    }
    if (roll < total) {
      const std::size_t pick = rng.UniformInt(alive.ids.size());
      const InputSize size = draw_size();
      trace.updates.push_back(Update::Resize(alive.ids[pick], size));
      alive.sizes[pick] = size;
      return;
    }
    // Capacity retune: stay within the configured band of the initial
    // capacity and never below twice the largest alive size (so the
    // trace remains feasible and future draws keep headroom).
    const double factor =
        1.0 / config.max_retune_factor +
        rng.UniformDouble() *
            (config.max_retune_factor - 1.0 / config.max_retune_factor);
    // llround on a product past LLONG_MAX is unspecified, and a setq
    // above kMaxCapacity would make the emitted trace unreplayable;
    // clamp the scaled capacity to the online subsystem's limit.
    const double scaled =
        std::min(static_cast<double>(config.capacity) * factor,
                 static_cast<double>(online::kMaxCapacity));
    InputSize new_q = static_cast<InputSize>(std::llround(scaled));
    new_q = std::max<InputSize>(new_q, 2 * std::max<InputSize>(
                                               alive.MaxSize(), config.lo));
    if (new_q == q) {
      emit_add(config.x2y && rng.Bernoulli(0.5) ? Side::kY : Side::kX);
      return;
    }
    trace.updates.push_back(Update::SetCapacity(new_q));
    q = new_q;
  };

  // One near-q/2 arrival: the crowd's inputs pair at most one-per-
  // reducer, so every burst forces a reducer-count spike.
  const auto emit_burst_add = [&]() {
    const InputSize high = std::max<InputSize>(config.lo, q / 2);
    const InputSize low =
        std::min(high, std::max<InputSize>(config.lo, 2 * (q / 5)));
    Update u = Update::Add(
        low + rng.UniformInt(static_cast<std::size_t>(high - low + 1)),
        config.x2y && rng.Bernoulli(0.5) ? Side::kY : Side::kX);
    trace.updates.push_back(u);
    alive.ids.push_back(next_id++);
    alive.sizes.push_back(u.value);
    alive.sides.push_back(u.side);
  };

  switch (config.shape) {
    case TraceShape::kMixed:
      for (std::size_t step = 0; step < config.steps; ++step) {
        emit_mixed(/*allow_retune=*/true);
      }
      break;
    case TraceShape::kFlashCrowd:
      for (std::size_t step = 0; step < config.steps;) {
        if (step % config.burst_every == 0) {
          for (std::size_t i = 0;
               i < config.burst_size && step < config.steps; ++i, ++step) {
            emit_burst_add();
          }
          continue;
        }
        emit_mixed(/*allow_retune=*/false);
        ++step;
      }
      break;
    case TraceShape::kCapacityOscillation:
      for (std::size_t step = 0; step < config.steps; ++step) {
        if (step > 0 && step % config.osc_period == 0) {
          const bool shrink = (step / config.osc_period) % 2 == 1;
          InputSize new_q = config.capacity;
          if (shrink) {
            new_q = static_cast<InputSize>(std::llround(
                static_cast<double>(config.capacity) / config.osc_factor));
          }
          new_q = std::max<InputSize>(
              new_q, 2 * std::max<InputSize>(alive.MaxSize(), config.lo));
          new_q = std::min<InputSize>(new_q, online::kMaxCapacity);
          if (new_q != q) {
            trace.updates.push_back(Update::SetCapacity(new_q));
            q = new_q;
            continue;
          }
          // Clamped into a no-op swing: fall through to a mixed event
          // so the step count still advances the trace.
        }
        emit_mixed(/*allow_retune=*/false);
      }
      break;
  }
  return trace;
}

}  // namespace msp::wl
