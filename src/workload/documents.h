// Synthetic documents for the similarity-join workload.
//
// A document is a sorted set of token ids. Its "size" (for reducer
// capacity purposes) is its token count. Lengths follow a heavy-tailed
// distribution, so documents are genuinely different-sized inputs.

#ifndef MSP_WORKLOAD_DOCUMENTS_H_
#define MSP_WORKLOAD_DOCUMENTS_H_

#include <cstdint>
#include <vector>

namespace msp::wl {

/// One document: a strictly increasing list of token ids.
struct Document {
  uint32_t id = 0;
  std::vector<uint32_t> tokens;

  std::size_t size() const { return tokens.size(); }
};

/// Parameters for document synthesis.
struct DocumentConfig {
  std::size_t count = 100;        // number of documents
  uint32_t vocabulary = 10'000;   // token universe
  std::size_t min_tokens = 4;     // smallest document
  std::size_t max_tokens = 64;    // largest document
  double length_skew = 1.0;       // Zipf skew of the length distribution
  double token_skew = 0.8;        // Zipf skew of token popularity
  uint64_t seed = 1;
};

/// Generates `config.count` documents.
std::vector<Document> MakeDocuments(const DocumentConfig& config);

/// Jaccard similarity |a ∩ b| / |a ∪ b| of two token sets.
double Jaccard(const Document& a, const Document& b);

}  // namespace msp::wl

#endif  // MSP_WORKLOAD_DOCUMENTS_H_
