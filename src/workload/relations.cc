#include "workload/relations.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace msp::wl {

uint64_t Relation::TotalPayload() const {
  uint64_t total = 0;
  for (const Tuple& t : tuples) total += t.payload_size;
  return total;
}

Relation MakeSkewedRelation(const RelationConfig& config) {
  MSP_CHECK_GE(config.num_keys, 1u);
  MSP_CHECK_GT(config.payload_lo, 0u);
  MSP_CHECK_LE(config.payload_lo, config.payload_hi);
  Rng rng(config.seed);
  ZipfDistribution keys(config.num_keys, config.key_skew);
  Relation relation;
  relation.tuples.resize(config.num_tuples);
  for (std::size_t i = 0; i < config.num_tuples; ++i) {
    Tuple& t = relation.tuples[i];
    t.other = (config.seed << 32) ^ i;  // unique per tuple
    t.key = keys.Sample(&rng);
    t.payload_size = static_cast<uint32_t>(
        rng.UniformInRange(config.payload_lo, config.payload_hi));
  }
  return relation;
}

std::vector<std::pair<uint64_t, std::size_t>> KeyHistogram(
    const Relation& relation) {
  std::unordered_map<uint64_t, std::size_t> counts;
  for (const Tuple& t : relation.tuples) ++counts[t.key];
  std::vector<std::pair<uint64_t, std::size_t>> histogram(counts.begin(),
                                                          counts.end());
  std::sort(histogram.begin(), histogram.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return histogram;
}

}  // namespace msp::wl
