#include "workload/sizes.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace msp::wl {

std::vector<InputSize> EqualSizes(std::size_t m, InputSize w) {
  MSP_CHECK_GT(w, 0u);
  return std::vector<InputSize>(m, w);
}

std::vector<InputSize> UniformSizes(std::size_t m, InputSize lo, InputSize hi,
                                    uint64_t seed) {
  MSP_CHECK_GT(lo, 0u);
  MSP_CHECK_LE(lo, hi);
  Rng rng(seed);
  std::vector<InputSize> sizes(m);
  for (auto& w : sizes) w = rng.UniformInRange(lo, hi);
  return sizes;
}

std::vector<InputSize> ZipfSizes(std::size_t m, InputSize lo, InputSize hi,
                                 double skew, uint64_t seed) {
  MSP_CHECK_GT(lo, 0u);
  MSP_CHECK_LE(lo, hi);
  Rng rng(seed);
  const uint64_t ranks = std::max<uint64_t>(1, hi / lo);
  ZipfDistribution zipf(ranks, skew);
  std::vector<InputSize> sizes(m);
  for (auto& w : sizes) {
    w = std::min<InputSize>(hi, lo * zipf.Sample(&rng));
  }
  return sizes;
}

std::vector<InputSize> NormalSizes(std::size_t m, double mean, double stddev,
                                   InputSize lo, InputSize hi, uint64_t seed) {
  MSP_CHECK_GT(lo, 0u);
  MSP_CHECK_LE(lo, hi);
  Rng rng(seed);
  std::vector<InputSize> sizes(m);
  for (auto& w : sizes) {
    const double v = std::round(rng.Normal(mean, stddev));
    const double clamped =
        std::clamp(v, static_cast<double>(lo), static_cast<double>(hi));
    w = static_cast<InputSize>(clamped);
  }
  return sizes;
}

}  // namespace msp::wl
