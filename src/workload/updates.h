// Seeded update-trace generation for the online assignment experiments.
//
// Generates arrival/departure/resize/retune streams over Zipf-sized
// inputs (the "different-sized inputs" regime of the paper, now with
// the sizes drifting over time). Every generated trace is:
//
//  * deterministic in the seed (same config -> byte-identical trace);
//  * feasible by construction: sizes are clamped to half the current
//    capacity, so every required pair always fits in one reducer, and
//    capacity retunes never drop below twice the largest alive input —
//    OnlineAssigner rejects nothing when replaying these traces;
//  * id-consistent with OnlineAssigner: inputs are numbered 0, 1, ...
//    in AddInput order, so Remove/Resize events reference assigner ids.
//
// The generator mirrors the alive set while emitting, keeping at least
// `min_alive` inputs (per side, for X2Y) so instances never degenerate
// below what the lower bounds and the planner need.

#ifndef MSP_WORKLOAD_UPDATES_H_
#define MSP_WORKLOAD_UPDATES_H_

#include <cstdint>

#include "online/trace.h"

namespace msp::wl {

/// Shape of the generated stream.
enum class TraceShape : uint8_t {
  /// The original seeded mix of arrivals/departures/resizes/retunes.
  kMixed = 0,
  /// Flash crowds: every `burst_every` steps a burst of `burst_size`
  /// arrivals sized near q/2 (uniform in [2q/5, q/2]) slams the
  /// assigner — the worst case for pair coverage, since near-half-
  /// capacity inputs pair only one-per-reducer. Between bursts the
  /// regular mix (without capacity retunes) drains and churns the
  /// crowd.
  kFlashCrowd = 1,
  /// Capacity oscillation: every `osc_period` steps q swings between
  /// the configured capacity and capacity / osc_factor (clamped so
  /// every alive pair stays feasible). Shrinks force eviction storms,
  /// growths leave fragmentation — the repair engine's retune paths
  /// under sustained stress. The regular mix (without its own random
  /// retunes) runs between swings.
  kCapacityOscillation = 2,
};

/// Configuration of one generated update trace.
struct TraceConfig {
  bool x2y = false;
  /// Inputs added before the update mix starts (split evenly across
  /// sides for X2Y).
  std::size_t initial_inputs = 40;
  /// Update events after the initial adds.
  std::size_t steps = 200;
  /// Initial reducer capacity q.
  InputSize capacity = 100;
  /// Zipf size range: sizes land in [lo, min(hi, q/2)].
  InputSize lo = 2;
  InputSize hi = 40;
  double skew = 1.2;
  /// Event mix (normalized internally; the remainder after add +
  /// remove + resize goes to capacity retunes).
  double p_add = 0.35;
  double p_remove = 0.25;
  double p_resize = 0.30;
  /// Never remove below this many alive inputs (per side for X2Y).
  std::size_t min_alive = 3;
  /// Capacity retunes stay within [capacity / max_retune_factor,
  /// capacity * max_retune_factor] of the initial capacity (and never
  /// below twice the largest alive size).
  double max_retune_factor = 1.5;
  uint64_t seed = 1;

  /// Stream shape; the fields below only apply to their shape.
  TraceShape shape = TraceShape::kMixed;
  /// kFlashCrowd: a burst fires once every `burst_every` steps (the
  /// burst's adds count toward `steps`), `burst_size` arrivals each.
  std::size_t burst_every = 40;
  std::size_t burst_size = 12;
  /// kCapacityOscillation: q swings every `osc_period` steps between
  /// `capacity` and max(capacity / osc_factor, twice the largest
  /// alive size). Must be > 1.0 to oscillate at all.
  std::size_t osc_period = 25;
  double osc_factor = 2.0;
};

/// Generates a feasible, deterministic update trace.
online::UpdateTrace GenerateTrace(const TraceConfig& config);

}  // namespace msp::wl

#endif  // MSP_WORKLOAD_UPDATES_H_
