// Synthetic relations for the skew-join workload.
//
// R(A, B) joins S(B, C) on B. Join keys follow a Zipf distribution, so
// a handful of B-values are heavy hitters — the situation the paper's
// X2Y problem addresses. Tuples carry variable-size payloads, making
// the per-key X2Y instances genuinely different-sized.

#ifndef MSP_WORKLOAD_RELATIONS_H_
#define MSP_WORKLOAD_RELATIONS_H_

#include <cstdint>
#include <vector>

namespace msp::wl {

/// One tuple of R(A, B) or S(B, C): `other` is the non-join attribute
/// (A or C), `key` is the join attribute B, and `payload_size` models
/// the tuple's width in bytes.
struct Tuple {
  uint64_t other = 0;
  uint64_t key = 0;
  uint32_t payload_size = 1;
};

/// A bag of tuples.
struct Relation {
  std::vector<Tuple> tuples;

  std::size_t size() const { return tuples.size(); }
  uint64_t TotalPayload() const;
};

/// Parameters for relation synthesis.
struct RelationConfig {
  std::size_t num_tuples = 10'000;
  uint64_t num_keys = 1'000;      // distinct join-key universe
  double key_skew = 1.2;          // Zipf skew of join keys
  uint32_t payload_lo = 8;        // min payload bytes
  uint32_t payload_hi = 64;       // max payload bytes
  uint64_t seed = 1;
};

/// Generates a relation; `other` values are unique per tuple so join
/// outputs can be verified exactly.
Relation MakeSkewedRelation(const RelationConfig& config);

/// The multiset of join keys and their frequencies, descending.
std::vector<std::pair<uint64_t, std::size_t>> KeyHistogram(
    const Relation& relation);

}  // namespace msp::wl

#endif  // MSP_WORKLOAD_RELATIONS_H_
