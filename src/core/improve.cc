#include "core/improve.h"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "util/check.h"

namespace msp {

namespace {

uint64_t ReducerLoad(const std::vector<InputSize>& sizes,
                     const Reducer& reducer) {
  uint64_t load = 0;
  for (InputId id : reducer) load += sizes[id];
  return load;
}

// Load of the union of two reducers (duplicates unified).
uint64_t UnionLoad(const std::vector<InputSize>& sizes, const Reducer& a,
                   const Reducer& b) {
  // Both inputs are kept sorted by the caller.
  uint64_t load = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i] < b[j])) {
      load += sizes[a[i++]];
    } else if (i == a.size() || b[j] < a[i]) {
      load += sizes[b[j++]];
    } else {
      load += sizes[a[i++]];
      ++j;
    }
  }
  return load;
}

Reducer MergeSorted(const Reducer& a, const Reducer& b) {
  Reducer merged;
  merged.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(merged));
  return merged;
}

}  // namespace

ImproveStats MergeReducers(const std::vector<InputSize>& sizes,
                           InputSize capacity, MappingSchema* schema) {
  MSP_CHECK(schema != nullptr);
  ImproveStats stats;
  stats.reducers_before = schema->num_reducers();
  for (const Reducer& r : schema->reducers) {
    stats.communication_before += ReducerLoad(sizes, r);
  }

  // Work on sorted reducers, lightest first; try to fold each reducer
  // into the best (tightest-fitting) later partner.
  std::vector<Reducer> reducers = schema->reducers;
  for (Reducer& r : reducers) std::sort(r.begin(), r.end());
  std::sort(reducers.begin(), reducers.end(),
            [&](const Reducer& a, const Reducer& b) {
              return ReducerLoad(sizes, a) < ReducerLoad(sizes, b);
            });

  std::vector<bool> dead(reducers.size(), false);
  for (std::size_t i = 0; i < reducers.size(); ++i) {
    if (dead[i]) continue;
    // Find the partner whose union load is largest but still <= q
    // (tightest packing leaves the most room elsewhere).
    std::size_t best_j = reducers.size();
    uint64_t best_union = 0;
    for (std::size_t j = i + 1; j < reducers.size(); ++j) {
      if (dead[j]) continue;
      const uint64_t u = UnionLoad(sizes, reducers[i], reducers[j]);
      if (u <= capacity && u >= best_union) {
        best_union = u;
        best_j = j;
      }
    }
    if (best_j != reducers.size()) {
      reducers[best_j] = MergeSorted(reducers[i], reducers[best_j]);
      dead[i] = true;
      ++stats.merges;
    }
  }

  MappingSchema merged;
  for (std::size_t i = 0; i < reducers.size(); ++i) {
    if (!dead[i]) merged.AddReducer(std::move(reducers[i]));
  }
  *schema = std::move(merged);

  stats.reducers_after = schema->num_reducers();
  for (const Reducer& r : schema->reducers) {
    stats.communication_after += ReducerLoad(sizes, r);
  }
  return stats;
}

ImproveStats MergeReducers(const A2AInstance& instance,
                           MappingSchema* schema) {
  return MergeReducers(instance.sizes(), instance.capacity(), schema);
}

ImproveStats MergeReducers(const X2YInstance& instance,
                           MappingSchema* schema) {
  std::vector<InputSize> sizes = instance.x_sizes();
  sizes.insert(sizes.end(), instance.y_sizes().begin(),
               instance.y_sizes().end());
  return MergeReducers(sizes, instance.capacity(), schema);
}

uint64_t PruneRedundantCopiesA2A(const A2AInstance& instance,
                                 MappingSchema* schema) {
  MSP_CHECK(schema != nullptr);
  const std::size_t m = instance.num_inputs();
  if (m < 2) return 0;
  // cover_count[pair] = how many reducers cover the pair.
  auto pair_index = [m](uint64_t i, uint64_t j) {
    return i * (m - 1) - i * (i - 1) / 2 + (j - i - 1);
  };
  std::vector<uint32_t> cover(m * (m - 1) / 2, 0);
  for (const Reducer& reducer : *&schema->reducers) {
    for (std::size_t a = 0; a < reducer.size(); ++a) {
      for (std::size_t b = a + 1; b < reducer.size(); ++b) {
        const InputId lo = std::min(reducer[a], reducer[b]);
        const InputId hi = std::max(reducer[a], reducer[b]);
        ++cover[pair_index(lo, hi)];
      }
    }
  }

  uint64_t removed = 0;
  for (Reducer& reducer : schema->reducers) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t a = 0; a < reducer.size(); ++a) {
        // `a` is removable if every pair (a, other) in this reducer is
        // covered at least twice.
        bool removable = !reducer.empty() && reducer.size() > 1;
        for (std::size_t b = 0; removable && b < reducer.size(); ++b) {
          if (b == a) continue;
          const InputId lo = std::min(reducer[a], reducer[b]);
          const InputId hi = std::max(reducer[a], reducer[b]);
          if (cover[pair_index(lo, hi)] < 2) removable = false;
        }
        if (!removable) continue;
        for (std::size_t b = 0; b < reducer.size(); ++b) {
          if (b == a) continue;
          const InputId lo = std::min(reducer[a], reducer[b]);
          const InputId hi = std::max(reducer[a], reducer[b]);
          --cover[pair_index(lo, hi)];
        }
        reducer.erase(reducer.begin() + static_cast<std::ptrdiff_t>(a));
        ++removed;
        changed = true;
        break;
      }
    }
  }
  // Drop reducers that became empty or singleton: they cover no pair,
  // so their remaining copies are redundant too.
  std::vector<Reducer> kept;
  for (Reducer& reducer : schema->reducers) {
    if (reducer.size() >= 2) {
      kept.push_back(std::move(reducer));
    } else {
      removed += reducer.size();
    }
  }
  schema->reducers = std::move(kept);
  return removed;
}

}  // namespace msp
