#include "core/a2a.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/check.h"
#include "util/math_util.h"

namespace msp {

namespace {

// Builds one reducer per pair of groups; pairs inside a group are
// covered because whole groups travel together. `groups[g]` lists the
// input ids of group g. With a single group, emits one reducer holding
// it (covering its internal pairs).
MappingSchema PairGroups(const std::vector<std::vector<InputId>>& groups) {
  MappingSchema schema;
  if (groups.empty()) return schema;
  if (groups.size() == 1) {
    if (groups[0].size() >= 2) schema.AddReducer(groups[0]);
    return schema;
  }
  for (std::size_t a = 0; a < groups.size(); ++a) {
    for (std::size_t b = a + 1; b < groups.size(); ++b) {
      Reducer reducer = groups[a];
      reducer.insert(reducer.end(), groups[b].begin(), groups[b].end());
      schema.AddReducer(std::move(reducer));
    }
  }
  return schema;
}

// Converts a bin packing over a subset of inputs (`ids[i]` is the
// caller-visible id of packed item i) into id groups.
std::vector<std::vector<InputId>> BinsToGroups(
    const bp::Packing& packing, const std::vector<InputId>& ids) {
  std::vector<std::vector<InputId>> groups;
  groups.reserve(packing.bins.size());
  for (const auto& bin : packing.bins) {
    std::vector<InputId> group;
    group.reserve(bin.size());
    for (bp::ItemIndex item : bin) group.push_back(ids[item]);
    groups.push_back(std::move(group));
  }
  return groups;
}

std::vector<InputId> AllIds(std::size_t m) {
  std::vector<InputId> ids(m);
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

}  // namespace

std::string A2AAlgorithmName(A2AAlgorithm algorithm) {
  switch (algorithm) {
    case A2AAlgorithm::kSingleReducer:
      return "single-reducer";
    case A2AAlgorithm::kNaiveAllPairs:
      return "naive-all-pairs";
    case A2AAlgorithm::kEqualGrouping:
      return "equal-grouping";
    case A2AAlgorithm::kBinPackPairing:
      return "binpack-pairing";
    case A2AAlgorithm::kBinPackTriples:
      return "binpack-triples";
    case A2AAlgorithm::kBigSmall:
      return "big-small";
    case A2AAlgorithm::kGreedyCover:
      return "greedy-cover";
  }
  return "unknown";
}

std::optional<MappingSchema> SolveA2A(const A2AInstance& instance,
                                      A2AAlgorithm algorithm,
                                      const A2AOptions& options) {
  switch (algorithm) {
    case A2AAlgorithm::kSingleReducer:
      return SolveA2ASingleReducer(instance);
    case A2AAlgorithm::kNaiveAllPairs:
      return SolveA2ANaiveAllPairs(instance);
    case A2AAlgorithm::kEqualGrouping:
      return SolveA2AEqualGrouping(instance);
    case A2AAlgorithm::kBinPackPairing:
      return SolveA2ABinPackPairing(instance, options);
    case A2AAlgorithm::kBinPackTriples:
      return SolveA2ABinPackTriples(instance, options);
    case A2AAlgorithm::kBigSmall:
      return SolveA2ABigSmall(instance, options);
    case A2AAlgorithm::kGreedyCover:
      return SolveA2AGreedyCover(instance);
  }
  return std::nullopt;
}

std::optional<MappingSchema> SolveA2ASingleReducer(const A2AInstance& in) {
  MappingSchema schema;
  if (in.num_inputs() < 2) return schema;
  if (in.total_size() > in.capacity()) return std::nullopt;
  schema.AddReducer(AllIds(in.num_inputs()));
  return schema;
}

std::optional<MappingSchema> SolveA2ANaiveAllPairs(const A2AInstance& in) {
  MappingSchema schema;
  if (in.num_inputs() < 2) return schema;
  if (!in.IsFeasible()) return std::nullopt;
  const std::size_t m = in.num_inputs();
  schema.reducers.reserve(PairCount(m));
  for (InputId i = 0; i < m; ++i) {
    for (InputId j = i + 1; j < m; ++j) {
      schema.AddReducer({i, j});
    }
  }
  return schema;
}

std::optional<MappingSchema> SolveA2AEqualGrouping(const A2AInstance& in) {
  if (in.num_inputs() < 2) return MappingSchema{};
  if (!in.AllSizesEqual()) return std::nullopt;
  const InputSize w = in.size(0);
  const uint64_t k = in.capacity() / w;  // inputs per full reducer
  if (k < 2) return std::nullopt;        // no pair fits together
  const uint64_t group_size = std::max<uint64_t>(1, k / 2);

  std::vector<std::vector<InputId>> groups;
  std::vector<InputId> current;
  for (InputId i = 0; i < in.num_inputs(); ++i) {
    current.push_back(i);
    if (current.size() == group_size) {
      groups.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) groups.push_back(std::move(current));
  return PairGroups(groups);
}

std::optional<MappingSchema> SolveA2ABinPackPairing(const A2AInstance& in,
                                                    const A2AOptions& options) {
  if (in.num_inputs() < 2) return MappingSchema{};
  const uint64_t half = in.capacity() / 2;
  if (half == 0 || in.max_size() > half) return std::nullopt;
  const bp::Packing packing =
      bp::Pack(in.sizes(), half, options.bin_packer);
  return PairGroups(BinsToGroups(packing, AllIds(in.num_inputs())));
}

std::optional<MappingSchema> SolveA2ABinPackTriples(
    const A2AInstance& in, const A2AOptions& options) {
  return SolveA2ABinPackKGroups(in, 3, options);
}

std::optional<MappingSchema> SolveA2ABinPackKGroups(
    const A2AInstance& in, int bins_per_reducer, const A2AOptions& options) {
  if (bins_per_reducer < 2) return std::nullopt;
  if (in.num_inputs() < 2) return MappingSchema{};
  const std::size_t k = static_cast<std::size_t>(bins_per_reducer);
  const uint64_t part = in.capacity() / k;
  if (part == 0 || in.max_size() > part) return std::nullopt;
  const bp::Packing packing = bp::Pack(in.sizes(), part, options.bin_packer);
  const auto groups = BinsToGroups(packing, AllIds(in.num_inputs()));
  const std::size_t x = groups.size();
  if (x <= k) {
    // All bins fit in one reducer (x * part <= k * part <= q).
    Reducer reducer;
    for (const auto& group : groups) {
      reducer.insert(reducer.end(), group.begin(), group.end());
    }
    MappingSchema schema;
    if (reducer.size() >= 2) schema.AddReducer(std::move(reducer));
    return schema;
  }
  if (k == 2) return PairGroups(groups);

  // Greedy cover of the complete graph on bins by k-cliques: seed a
  // clique with the first uncovered pair, then repeatedly add the bin
  // covering the most still-uncovered pairs against the clique.
  std::vector<std::vector<bool>> covered(x, std::vector<bool>(x, false));
  auto is_covered = [&](std::size_t a, std::size_t b) {
    return covered[std::min(a, b)][std::max(a, b)];
  };
  auto mark = [&](std::size_t a, std::size_t b) {
    covered[std::min(a, b)][std::max(a, b)] = true;
  };
  MappingSchema schema;
  std::vector<std::size_t> clique;
  for (std::size_t a = 0; a < x; ++a) {
    for (std::size_t b = a + 1; b < x; ++b) {
      if (is_covered(a, b)) continue;
      clique = {a, b};
      while (clique.size() < k) {
        std::size_t best_c = x;
        int best_gain = 0;
        for (std::size_t c = 0; c < x; ++c) {
          if (std::find(clique.begin(), clique.end(), c) != clique.end()) {
            continue;
          }
          int gain = 0;
          for (std::size_t member : clique) {
            if (!is_covered(member, c)) ++gain;
          }
          if (gain > best_gain) {
            best_gain = gain;
            best_c = c;
          }
        }
        if (best_c == x) break;  // nothing new to cover
        clique.push_back(best_c);
      }
      Reducer reducer;
      for (std::size_t member : clique) {
        reducer.insert(reducer.end(), groups[member].begin(),
                       groups[member].end());
      }
      for (std::size_t i = 0; i < clique.size(); ++i) {
        for (std::size_t j = i + 1; j < clique.size(); ++j) {
          mark(clique[i], clique[j]);
        }
      }
      schema.AddReducer(std::move(reducer));
    }
  }
  return schema;
}

std::optional<MappingSchema> SolveA2ABigSmall(const A2AInstance& in,
                                              const A2AOptions& options) {
  if (in.num_inputs() < 2) return MappingSchema{};
  if (!in.IsFeasible()) return std::nullopt;
  const uint64_t q = in.capacity();
  const uint64_t half = q / 2;

  std::vector<InputId> bigs;
  std::vector<InputId> smalls;
  std::vector<InputSize> small_sizes;
  for (InputId i = 0; i < in.num_inputs(); ++i) {
    if (in.size(i) > half) {
      bigs.push_back(i);
    } else {
      smalls.push_back(i);
      small_sizes.push_back(in.size(i));
    }
  }
  if (bigs.empty()) return SolveA2ABinPackPairing(in, options);

  MappingSchema schema;
  // Big-big pairs: feasibility guarantees each pair fits together.
  for (std::size_t a = 0; a < bigs.size(); ++a) {
    for (std::size_t b = a + 1; b < bigs.size(); ++b) {
      schema.AddReducer({bigs[a], bigs[b]});
    }
  }
  // Big-small pairs: pack the smalls into the residual capacity left by
  // each big input and pair the big with every such bin.
  for (InputId big : bigs) {
    if (smalls.empty()) break;
    const uint64_t residual = q - in.size(big);
    const bp::Packing packing =
        bp::Pack(small_sizes, residual, options.bin_packer);
    for (const auto& bin : packing.bins) {
      Reducer reducer = {big};
      for (bp::ItemIndex item : bin) reducer.push_back(smalls[item]);
      schema.AddReducer(std::move(reducer));
    }
  }
  // Small-small pairs via bin pairing at capacity q/2.
  if (smalls.size() >= 2) {
    const bp::Packing packing =
        bp::Pack(small_sizes, half, options.bin_packer);
    MappingSchema small_schema =
        PairGroups(BinsToGroups(packing, smalls));
    for (auto& reducer : small_schema.reducers) {
      schema.AddReducer(std::move(reducer));
    }
  }
  return schema;
}

std::optional<MappingSchema> SolveA2AGreedyCover(const A2AInstance& in) {
  const std::size_t m = in.num_inputs();
  if (m < 2) return MappingSchema{};
  if (!in.IsFeasible()) return std::nullopt;
  const uint64_t q = in.capacity();

  MappingSchema schema;
  std::vector<uint64_t> loads;
  // reducers_of[i] = reducers currently containing input i.
  std::vector<std::vector<uint32_t>> reducers_of(m);
  // covered[] over the triangular pair layout.
  std::vector<bool> covered(PairCount(m), false);
  auto pair_index = [m](uint64_t i, uint64_t j) {
    return i * (m - 1) - i * (i - 1) / 2 + (j - i - 1);
  };
  // Adds input `id` to reducer r, marking all newly covered pairs.
  auto add_to_reducer = [&](uint32_t r, InputId id) {
    for (InputId other : schema.reducers[r]) {
      const uint64_t p = other < id ? pair_index(other, id)
                                    : pair_index(id, other);
      covered[p] = true;
    }
    schema.reducers[r].push_back(id);
    loads[r] += in.size(id);
    reducers_of[id].push_back(r);
  };

  for (InputId i = 0; i < m; ++i) {
    for (InputId j = i + 1; j < m; ++j) {
      if (covered[pair_index(i, j)]) continue;
      bool placed = false;
      // Prefer extending a reducer that already holds one endpoint.
      for (uint32_t r : reducers_of[i]) {
        if (loads[r] + in.size(j) <= q) {
          add_to_reducer(r, j);
          placed = true;
          break;
        }
      }
      if (!placed) {
        for (uint32_t r : reducers_of[j]) {
          if (loads[r] + in.size(i) <= q) {
            add_to_reducer(r, i);
            placed = true;
            break;
          }
        }
      }
      if (!placed) {
        schema.AddReducer({});
        loads.push_back(0);
        const uint32_t r = static_cast<uint32_t>(schema.num_reducers() - 1);
        add_to_reducer(r, i);
        add_to_reducer(r, j);
      }
    }
  }
  return schema;
}

std::optional<MappingSchema> SolveA2AAuto(const A2AInstance& in,
                                          const A2AOptions& options) {
  if (in.num_inputs() < 2) return MappingSchema{};
  if (!in.IsFeasible()) return std::nullopt;
  if (in.total_size() <= in.capacity()) return SolveA2ASingleReducer(in);
  if (in.AllSizesEqual()) {
    auto schema = SolveA2AEqualGrouping(in);
    if (schema.has_value()) return schema;
  }
  if (in.max_size() <= in.capacity() / 2) {
    return SolveA2ABinPackPairing(in, options);
  }
  return SolveA2ABigSmall(in, options);
}

}  // namespace msp
