#include "core/schema_io.h"

#include <cstdint>
#include <sstream>

namespace msp {

namespace {

constexpr char kHeader[] = "mapping-schema v1";

// Strips a trailing comment and surrounding whitespace.
std::string CleanLine(const std::string& line) {
  std::string cleaned = line;
  const auto hash = cleaned.find('#');
  if (hash != std::string::npos) cleaned.erase(hash);
  const auto begin = cleaned.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = cleaned.find_last_not_of(" \t\r");
  return cleaned.substr(begin, end - begin + 1);
}

}  // namespace

std::string SchemaToText(const MappingSchema& schema) {
  std::ostringstream out;
  out << kHeader << "\n";
  out << "reducers " << schema.num_reducers() << "\n";
  for (const Reducer& reducer : schema.reducers) {
    for (std::size_t i = 0; i < reducer.size(); ++i) {
      if (i != 0) out << ' ';
      out << reducer[i];
    }
    out << "\n";
  }
  return out.str();
}

std::optional<MappingSchema> SchemaFromText(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  // Header.
  do {
    if (!std::getline(in, line)) return std::nullopt;
    line = CleanLine(line);
  } while (line.empty());
  if (line != kHeader) return std::nullopt;

  // Reducer count.
  do {
    if (!std::getline(in, line)) return std::nullopt;
    line = CleanLine(line);
  } while (line.empty());
  std::istringstream count_line(line);
  std::string tag;
  uint64_t expected = 0;
  count_line >> tag >> expected;
  if (count_line.fail() || tag != "reducers") return std::nullopt;

  MappingSchema schema;
  while (std::getline(in, line)) {
    line = CleanLine(line);
    if (line.empty()) continue;
    std::istringstream ids(line);
    Reducer reducer;
    uint64_t id;
    while (ids >> id) {
      if (id > ~InputId{0}) return std::nullopt;
      reducer.push_back(static_cast<InputId>(id));
    }
    if (!ids.eof()) return std::nullopt;  // non-numeric token
    schema.AddReducer(std::move(reducer));
  }
  if (schema.num_reducers() != expected) return std::nullopt;
  return schema;
}

}  // namespace msp
