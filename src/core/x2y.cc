#include "core/x2y.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace msp {

namespace {

// One reducer per (X-bin, Y-bin) pair. `x_groups` / `y_groups` hold
// global input ids.
MappingSchema CrossGroups(const std::vector<std::vector<InputId>>& x_groups,
                          const std::vector<std::vector<InputId>>& y_groups) {
  MappingSchema schema;
  for (const auto& xg : x_groups) {
    for (const auto& yg : y_groups) {
      Reducer reducer = xg;
      reducer.insert(reducer.end(), yg.begin(), yg.end());
      schema.AddReducer(std::move(reducer));
    }
  }
  return schema;
}

std::vector<std::vector<InputId>> PackSide(
    const std::vector<InputSize>& sizes, const std::vector<InputId>& ids,
    uint64_t capacity, bp::Algorithm packer) {
  const bp::Packing packing = bp::Pack(sizes, capacity, packer);
  std::vector<std::vector<InputId>> groups;
  groups.reserve(packing.bins.size());
  for (const auto& bin : packing.bins) {
    std::vector<InputId> group;
    group.reserve(bin.size());
    for (bp::ItemIndex item : bin) group.push_back(ids[item]);
    groups.push_back(std::move(group));
  }
  return groups;
}

std::vector<InputId> SideIds(std::size_t count, InputId base) {
  std::vector<InputId> ids(count);
  std::iota(ids.begin(), ids.end(), base);
  return ids;
}

}  // namespace

std::string X2YAlgorithmName(X2YAlgorithm algorithm) {
  switch (algorithm) {
    case X2YAlgorithm::kSingleReducer:
      return "single-reducer";
    case X2YAlgorithm::kNaiveCross:
      return "naive-cross";
    case X2YAlgorithm::kBinPackCross:
      return "binpack-cross";
    case X2YAlgorithm::kBinPackCrossTuned:
      return "binpack-cross-tuned";
    case X2YAlgorithm::kBigSmall:
      return "big-small";
  }
  return "unknown";
}

std::optional<MappingSchema> SolveX2Y(const X2YInstance& instance,
                                      X2YAlgorithm algorithm,
                                      const X2YOptions& options) {
  switch (algorithm) {
    case X2YAlgorithm::kSingleReducer:
      return SolveX2YSingleReducer(instance);
    case X2YAlgorithm::kNaiveCross:
      return SolveX2YNaiveCross(instance);
    case X2YAlgorithm::kBinPackCross:
      return SolveX2YBinPackCross(instance, options);
    case X2YAlgorithm::kBinPackCrossTuned:
      return SolveX2YBinPackCrossTuned(instance, options);
    case X2YAlgorithm::kBigSmall:
      return SolveX2YBigSmall(instance, options);
  }
  return std::nullopt;
}

std::optional<MappingSchema> SolveX2YSingleReducer(const X2YInstance& in) {
  MappingSchema schema;
  if (in.num_x() == 0 || in.num_y() == 0) return schema;
  if (in.total_x_size() + in.total_y_size() > in.capacity()) {
    return std::nullopt;
  }
  Reducer reducer;
  for (std::size_t i = 0; i < in.num_x(); ++i) reducer.push_back(in.XId(i));
  for (std::size_t j = 0; j < in.num_y(); ++j) reducer.push_back(in.YId(j));
  schema.AddReducer(std::move(reducer));
  return schema;
}

std::optional<MappingSchema> SolveX2YNaiveCross(const X2YInstance& in) {
  MappingSchema schema;
  if (in.num_x() == 0 || in.num_y() == 0) return schema;
  if (!in.IsFeasible()) return std::nullopt;
  schema.reducers.reserve(in.num_x() * in.num_y());
  for (std::size_t i = 0; i < in.num_x(); ++i) {
    for (std::size_t j = 0; j < in.num_y(); ++j) {
      schema.AddReducer({in.XId(i), in.YId(j)});
    }
  }
  return schema;
}

std::optional<MappingSchema> SolveX2YBinPackCross(const X2YInstance& in,
                                                  const X2YOptions& options) {
  if (in.num_x() == 0 || in.num_y() == 0) return MappingSchema{};
  const uint64_t q = in.capacity();
  const uint64_t x_cap = options.x_capacity == 0 ? q / 2 : options.x_capacity;
  if (x_cap == 0 || x_cap >= q) return std::nullopt;
  const uint64_t y_cap = q - x_cap;
  if (in.max_x_size() > x_cap || in.max_y_size() > y_cap) {
    return std::nullopt;
  }
  const auto x_groups = PackSide(in.x_sizes(), SideIds(in.num_x(), 0), x_cap,
                                 options.bin_packer);
  const auto y_groups =
      PackSide(in.y_sizes(),
               SideIds(in.num_y(), static_cast<InputId>(in.num_x())), y_cap,
               options.bin_packer);
  return CrossGroups(x_groups, y_groups);
}

std::optional<MappingSchema> SolveX2YBinPackCrossTuned(
    const X2YInstance& in, const X2YOptions& options) {
  if (in.num_x() == 0 || in.num_y() == 0) return MappingSchema{};
  if (!in.IsFeasible()) return std::nullopt;
  const uint64_t q = in.capacity();
  // Feasible splits c must satisfy max_x <= c and max_y <= q - c.
  const uint64_t c_lo = std::max<uint64_t>(1, in.max_x_size());
  const uint64_t c_hi = q - in.max_y_size();
  if (c_lo > c_hi) return std::nullopt;

  // Candidate splits: an even grid over [c_lo, c_hi] plus the default
  // q/2 (so the tuned variant never loses to the fixed split).
  std::vector<uint64_t> candidates;
  const int steps = std::max(2, options.tuning_steps);
  for (int s = 0; s < steps; ++s) {
    candidates.push_back(c_lo +
                         (c_hi - c_lo) * static_cast<uint64_t>(s) /
                             (steps - 1));
  }
  if (q / 2 >= c_lo && q / 2 <= c_hi) candidates.push_back(q / 2);

  std::optional<MappingSchema> best;
  std::size_t best_reducers = 0;
  for (uint64_t c : candidates) {
    X2YOptions attempt = options;
    attempt.x_capacity = c;
    auto schema = SolveX2YBinPackCross(in, attempt);
    if (!schema.has_value()) continue;
    if (!best.has_value() || schema->num_reducers() < best_reducers) {
      best_reducers = schema->num_reducers();
      best = std::move(schema);
    }
  }
  return best;
}

std::optional<MappingSchema> SolveX2YBigSmall(const X2YInstance& in,
                                              const X2YOptions& options) {
  if (in.num_x() == 0 || in.num_y() == 0) return MappingSchema{};
  if (!in.IsFeasible()) return std::nullopt;
  const uint64_t q = in.capacity();
  const uint64_t half = q / 2;

  std::vector<InputId> big_x;
  std::vector<InputId> small_x_ids;
  std::vector<InputSize> small_x_sizes;
  for (std::size_t i = 0; i < in.num_x(); ++i) {
    if (in.x_size(i) > half) {
      big_x.push_back(in.XId(i));
    } else {
      small_x_ids.push_back(in.XId(i));
      small_x_sizes.push_back(in.x_size(i));
    }
  }
  std::vector<InputId> big_y;
  std::vector<InputId> small_y_ids;
  std::vector<InputSize> small_y_sizes;
  for (std::size_t j = 0; j < in.num_y(); ++j) {
    if (in.y_size(j) > half) {
      big_y.push_back(in.YId(j));
    } else {
      small_y_ids.push_back(in.YId(j));
      small_y_sizes.push_back(in.y_size(j));
    }
  }

  MappingSchema schema;
  // Each big X input meets the whole of Y, packed into its residual
  // capacity. This covers (big X) x (all Y), including big Y inputs
  // (feasibility guarantees each such pair fits).
  std::vector<InputSize> all_y_sizes = in.y_sizes();
  std::vector<InputId> all_y_ids = SideIds(in.num_y(),
                                           static_cast<InputId>(in.num_x()));
  for (InputId bx : big_x) {
    const uint64_t residual = q - in.SizeOf(bx);
    const auto y_groups =
        PackSide(all_y_sizes, all_y_ids, residual, options.bin_packer);
    for (const auto& yg : y_groups) {
      Reducer reducer = {bx};
      reducer.insert(reducer.end(), yg.begin(), yg.end());
      schema.AddReducer(std::move(reducer));
    }
  }
  // Each big Y input meets the small X inputs (big X already handled).
  for (InputId by : big_y) {
    if (small_x_ids.empty()) break;
    const uint64_t residual = q - in.SizeOf(by);
    const auto x_groups =
        PackSide(small_x_sizes, small_x_ids, residual, options.bin_packer);
    for (const auto& xg : x_groups) {
      Reducer reducer = xg;
      reducer.push_back(by);
      schema.AddReducer(std::move(reducer));
    }
  }
  // Small x small via bin-pack cross at q/2 : q - q/2.
  if (!small_x_ids.empty() && !small_y_ids.empty()) {
    const auto x_groups =
        PackSide(small_x_sizes, small_x_ids, half, options.bin_packer);
    const auto y_groups =
        PackSide(small_y_sizes, small_y_ids, q - half, options.bin_packer);
    MappingSchema cross = CrossGroups(x_groups, y_groups);
    for (auto& reducer : cross.reducers) {
      schema.AddReducer(std::move(reducer));
    }
  }
  return schema;
}

std::optional<MappingSchema> SolveX2YAuto(const X2YInstance& in,
                                          const X2YOptions& options) {
  if (in.num_x() == 0 || in.num_y() == 0) return MappingSchema{};
  if (!in.IsFeasible()) return std::nullopt;
  if (in.total_x_size() + in.total_y_size() <= in.capacity()) {
    return SolveX2YSingleReducer(in);
  }
  const uint64_t half = in.capacity() / 2;
  if (in.max_x_size() <= half && in.max_y_size() <= half) {
    return SolveX2YBinPackCrossTuned(in, options);
  }
  return SolveX2YBigSmall(in, options);
}

}  // namespace msp
