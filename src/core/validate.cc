#include "core/validate.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/check.h"
#include "util/math_util.h"

namespace msp {

namespace {

// Index of the unordered pair (i, j), i < j, in a flat triangular
// layout over m elements.
inline uint64_t PairIndex(uint64_t i, uint64_t j, uint64_t m) {
  MSP_DCHECK(i < j);
  // Offset of row i = sum_{r<i} (m-1-r) = i*m - i - i*(i-1)/2.
  return i * (m - 1) - i * (i - 1) / 2 + (j - i - 1);
}

// Shared structural checks: ids in range, no duplicates within a
// reducer, loads within capacity. Returns an error string or empty.
template <typename SizeOfFn>
std::string CheckStructure(const MappingSchema& schema, std::size_t num_inputs,
                           uint64_t capacity, SizeOfFn size_of) {
  std::vector<uint32_t> last_seen(num_inputs, ~uint32_t{0});
  for (std::size_t r = 0; r < schema.reducers.size(); ++r) {
    uint64_t load = 0;
    for (InputId id : schema.reducers[r]) {
      if (id >= num_inputs) {
        std::ostringstream os;
        os << "reducer " << r << " references unknown input " << id;
        return os.str();
      }
      if (last_seen[id] == r) {
        std::ostringstream os;
        os << "reducer " << r << " contains input " << id << " twice";
        return os.str();
      }
      last_seen[id] = static_cast<uint32_t>(r);
      load += size_of(id);
    }
    if (load > capacity) {
      std::ostringstream os;
      os << "reducer " << r << " exceeds capacity: load " << load << " > q "
         << capacity;
      return os.str();
    }
  }
  return "";
}

}  // namespace

ValidationResult ValidateA2A(const A2AInstance& instance,
                             const MappingSchema& schema) {
  const std::size_t m = instance.num_inputs();
  std::string structural =
      CheckStructure(schema, m, instance.capacity(),
                     [&](InputId id) { return instance.size(id); });
  if (!structural.empty()) return ValidationResult::Fail(structural);

  const uint64_t required = instance.NumOutputs();
  if (m < 2) return ValidationResult::Ok(0, required);

  std::vector<bool> covered(required, false);
  uint64_t covered_count = 0;
  for (const Reducer& reducer : schema.reducers) {
    Reducer sorted = reducer;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t a = 0; a < sorted.size(); ++a) {
      for (std::size_t b = a + 1; b < sorted.size(); ++b) {
        const uint64_t p = PairIndex(sorted[a], sorted[b], m);
        if (!covered[p]) {
          covered[p] = true;
          ++covered_count;
        }
      }
    }
  }
  if (covered_count != required) {
    // Report the first missing pair to aid debugging.
    for (uint64_t i = 0; i < m; ++i) {
      for (uint64_t j = i + 1; j < m; ++j) {
        if (!covered[PairIndex(i, j, m)]) {
          std::ostringstream os;
          os << "pair (" << i << ", " << j << ") never meets in a reducer ("
             << covered_count << "/" << required << " covered)";
          return ValidationResult::Fail(os.str(), covered_count, required);
        }
      }
    }
  }
  return ValidationResult::Ok(covered_count, required);
}

ValidationResult ValidateX2Y(const X2YInstance& instance,
                             const MappingSchema& schema) {
  const std::size_t m = instance.num_x();
  const std::size_t n = instance.num_y();
  std::string structural =
      CheckStructure(schema, instance.num_inputs(), instance.capacity(),
                     [&](InputId id) { return instance.SizeOf(id); });
  if (!structural.empty()) return ValidationResult::Fail(structural);

  const uint64_t required = instance.NumOutputs();
  if (required == 0) return ValidationResult::Ok(0, 0);

  std::vector<bool> covered(required, false);
  uint64_t covered_count = 0;
  std::vector<InputId> xs;
  std::vector<InputId> ys;
  for (const Reducer& reducer : schema.reducers) {
    xs.clear();
    ys.clear();
    for (InputId id : reducer) {
      if (instance.IsX(id)) {
        xs.push_back(id);
      } else {
        ys.push_back(static_cast<InputId>(id - m));
      }
    }
    for (InputId x : xs) {
      for (InputId y : ys) {
        const uint64_t p = static_cast<uint64_t>(x) * n + y;
        if (!covered[p]) {
          covered[p] = true;
          ++covered_count;
        }
      }
    }
  }
  if (covered_count != required) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (!covered[i * n + j]) {
          std::ostringstream os;
          os << "cross pair (x" << i << ", y" << j
             << ") never meets in a reducer (" << covered_count << "/"
             << required << " covered)";
          return ValidationResult::Fail(os.str(), covered_count, required);
        }
      }
    }
  }
  return ValidationResult::Ok(covered_count, required);
}

}  // namespace msp
