// Lower bounds on reducers and communication for both problems.
//
// These are the paper's yardsticks: every heuristic is compared against
// the maximum of the applicable bounds, and the benchmark tables report
// the measured approximation ratio alg/LB.
//
// A2A bounds (m >= 2, feasible instance, W = total size):
//  * pair-mass:   a reducer of load L covers pair mass < L^2/2 <= q^2/2;
//                 total mass P = (W^2 - sum w_i^2)/2, so z >= 2P/q^2.
//  * pair-count:  a reducer holds at most k_max inputs (max number of
//                 smallest inputs fitting in q), covering <= C(k_max,2)
//                 of the C(m,2) pairs.
//  * replication: input i meets partners of total size W - w_i, at most
//                 q - w_i per reducer copy, so it needs
//                 r_i >= ceil((W - w_i)/(q - w_i)) copies; communication
//                 >= sum w_i * r_i and z >= that / q.
//  * Schönheim (equal sizes w, k = floor(q/w) >= 2): the schema is a
//                 covering design, so z >= ceil(m/k * ceil((m-1)/(k-1))).
//
// X2Y bounds mirror these with pair mass W_X * W_Y (<= q^2/4 coverable
// per reducer) and per-side replication r_xi >= ceil(W_Y / (q - w_i)).
//
// Paper map (Afrati et al., EDBT 2015; extended arXiv:1507.04461):
// the pair-mass and replication arguments implement the reducer- and
// communication-cost lower bounds of the paper's Sec. "Lower Bounds"
// (intuition: a reducer of capacity q covers at most q^2/2 of A2A pair
// mass, q^2/4 of X2Y pair mass, and input i needs enough copies to
// meet W - w_i worth of partners at q - w_i per copy). The Schönheim
// bound specializes the equal-sized case, where any valid schema is a
// covering design C(m, k, 2) — the yardstick for the paper's grouping
// construction. The pair-count bound is this library's addition.

#ifndef MSP_CORE_BOUNDS_H_
#define MSP_CORE_BOUNDS_H_

#include <cstdint>

#include "core/instance.h"

namespace msp {

/// Collection of A2A lower bounds. All values are lower bounds on any
/// valid mapping schema for the instance; `reducers` is their maximum.
struct A2ALowerBounds {
  uint64_t pair_mass = 0;
  uint64_t pair_count = 0;
  uint64_t replication = 0;   // reducers implied by communication bound
  uint64_t schonheim = 0;     // 0 when sizes are not all equal
  uint64_t reducers = 0;      // max of the above (>= 1 when m >= 2)
  uint64_t communication = 0; // lower bound on total size units moved

  static A2ALowerBounds Compute(const A2AInstance& instance);
};

/// Collection of X2Y lower bounds; same conventions as A2ALowerBounds.
struct X2YLowerBounds {
  uint64_t pair_mass = 0;
  uint64_t pair_count = 0;
  uint64_t replication = 0;
  uint64_t reducers = 0;
  uint64_t communication = 0;

  static X2YLowerBounds Compute(const X2YInstance& instance);
};

/// Max number of inputs (taking the smallest first) whose sizes fit in
/// `budget`. Helper exposed for tests; also used by the pair-count
/// bounds.
uint64_t MaxInputsWithinBudget(const std::vector<InputSize>& sizes,
                               uint64_t budget);

}  // namespace msp

#endif  // MSP_CORE_BOUNDS_H_
