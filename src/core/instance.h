// Problem instances for the two mapping-schema problems of the paper:
//
//  * A2AInstance — "all-to-all": m inputs with sizes w_1..w_m and a
//    reducer capacity q; every pair of inputs is an output.
//  * X2YInstance — "X-to-Y": disjoint sets X (sizes w_1..w_m) and Y
//    (sizes w'_1..w'_n); every cross pair (x_i, y_j) is an output.
//
// Instances are immutable after creation and validate their invariants
// at construction (positive sizes, positive capacity, every input fits
// in a reducer by itself).
//
// These are the two problem shapes defined in the paper (Afrati et
// al., EDBT 2015; extended arXiv:1507.04461, Sec. "Mapping Schema and
// the Tradeoffs"): inputs of different sizes, a reducer capacity q
// that bounds the sum of sizes any reducer may receive, and a set of
// required outputs — all C(m,2) pairs for A2A, all m*n cross pairs
// for X2Y.

#ifndef MSP_CORE_INSTANCE_H_
#define MSP_CORE_INSTANCE_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace msp {

/// Identifies an input. For X2Y instances the ids are global: X inputs
/// occupy [0, num_x) and Y inputs occupy [num_x, num_x + num_y).
using InputId = uint32_t;

/// Size of an input, in the same unit as the reducer capacity q.
using InputSize = uint64_t;

/// An instance of the A2A mapping schema problem.
class A2AInstance {
 public:
  /// Validates and builds an instance. Returns nullopt when `capacity`
  /// is zero, any size is zero, or any size exceeds `capacity`
  /// (an input that cannot be placed in any reducer).
  static std::optional<A2AInstance> Create(std::vector<InputSize> sizes,
                                           InputSize capacity);

  std::size_t num_inputs() const { return sizes_.size(); }
  InputSize capacity() const { return capacity_; }
  InputSize size(InputId i) const { return sizes_[i]; }
  const std::vector<InputSize>& sizes() const { return sizes_; }

  /// Sum of all input sizes (W in the paper).
  InputSize total_size() const { return total_size_; }
  InputSize max_size() const { return max_size_; }
  InputSize min_size() const { return min_size_; }

  /// True when all inputs have the same size (the paper's special case
  /// with the grouping construction).
  bool AllSizesEqual() const;

  /// A mapping schema exists (with unlimited reducers) iff every pair
  /// fits together, i.e., the two largest inputs sum to <= q.
  bool IsFeasible() const;

  /// Number of unordered pairs of inputs, m(m-1)/2.
  uint64_t NumOutputs() const;

 private:
  A2AInstance(std::vector<InputSize> sizes, InputSize capacity);

  std::vector<InputSize> sizes_;
  InputSize capacity_;
  InputSize total_size_ = 0;
  InputSize max_size_ = 0;
  InputSize min_size_ = 0;
  InputSize second_max_size_ = 0;
};

/// An instance of the X2Y mapping schema problem.
class X2YInstance {
 public:
  /// Validates and builds an instance; same invariants as A2A, applied
  /// to both sides.
  static std::optional<X2YInstance> Create(std::vector<InputSize> x_sizes,
                                           std::vector<InputSize> y_sizes,
                                           InputSize capacity);

  std::size_t num_x() const { return x_sizes_.size(); }
  std::size_t num_y() const { return y_sizes_.size(); }
  std::size_t num_inputs() const { return num_x() + num_y(); }
  InputSize capacity() const { return capacity_; }

  InputSize x_size(std::size_t i) const { return x_sizes_[i]; }
  InputSize y_size(std::size_t j) const { return y_sizes_[j]; }
  const std::vector<InputSize>& x_sizes() const { return x_sizes_; }
  const std::vector<InputSize>& y_sizes() const { return y_sizes_; }

  /// Global id of the i-th X input (== i).
  InputId XId(std::size_t i) const { return static_cast<InputId>(i); }
  /// Global id of the j-th Y input (== num_x + j).
  InputId YId(std::size_t j) const {
    return static_cast<InputId>(x_sizes_.size() + j);
  }
  /// True when `id` refers to an X input.
  bool IsX(InputId id) const { return id < x_sizes_.size(); }
  /// Size of the input with global id `id`.
  InputSize SizeOf(InputId id) const {
    return IsX(id) ? x_sizes_[id] : y_sizes_[id - x_sizes_.size()];
  }

  InputSize total_x_size() const { return total_x_; }
  InputSize total_y_size() const { return total_y_; }
  InputSize max_x_size() const { return max_x_; }
  InputSize max_y_size() const { return max_y_; }

  /// Feasible (with unlimited reducers) iff the largest X and largest Y
  /// inputs fit together: max_x + max_y <= q.
  bool IsFeasible() const;

  /// Number of outputs, m * n.
  uint64_t NumOutputs() const;

 private:
  X2YInstance(std::vector<InputSize> x_sizes, std::vector<InputSize> y_sizes,
              InputSize capacity);

  std::vector<InputSize> x_sizes_;
  std::vector<InputSize> y_sizes_;
  InputSize capacity_;
  InputSize total_x_ = 0;
  InputSize total_y_ = 0;
  InputSize max_x_ = 0;
  InputSize max_y_ = 0;
};

}  // namespace msp

#endif  // MSP_CORE_INSTANCE_H_
