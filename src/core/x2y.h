// Mapping-schema construction algorithms for the X2Y problem.
//
// Every (x, y) cross pair must meet in a reducer. The X2Y mapping
// schema problem is NP-complete; the paper's approximation scheme packs
// each side into bins and assigns one reducer per bin pair:
//
//  * kSingleReducer     — one reducer when W_X + W_Y <= q.
//  * kNaiveCross        — one reducer per (x, y) pair (baseline).
//  * kBinPackCross      — pack X into bins of capacity c and Y into
//                         bins of capacity q - c (default c = q/2);
//                         one reducer per (X-bin, Y-bin).
//  * kBinPackCrossTuned — sweeps the capacity split c to minimize
//                         x(c) * y(c); pays off when W_X >> W_Y, the
//                         typical skew-join shape.
//  * kBigSmall          — inputs above q/2 on either side get dedicated
//                         reducers against the other side packed into
//                         the residual capacity.
//
// Paper map (Afrati et al., EDBT 2015; extended arXiv:1507.04461):
// the X2Y problem and its NP-completeness are the paper's second
// problem shape (Sec. "Intractability"); kBinPackCross implements the
// bin-packing-based approximation of Sec. "The X2Y Mapping Schema
// Problem" (pack each side separately, cross the bins), with kBigSmall
// as the same section's general-sizes extension. The tuned capacity
// split is this library's addition, evaluated in ablation A2.

#ifndef MSP_CORE_X2Y_H_
#define MSP_CORE_X2Y_H_

#include <optional>
#include <string>

#include "binpack/algorithms.h"
#include "core/instance.h"
#include "core/schema.h"

namespace msp {

/// Selects an X2Y schema-construction algorithm.
enum class X2YAlgorithm {
  kSingleReducer,
  kNaiveCross,
  kBinPackCross,
  kBinPackCrossTuned,
  kBigSmall,
};

/// Options shared by the X2Y solvers.
struct X2YOptions {
  /// Bin packer used on both sides.
  bp::Algorithm bin_packer = bp::Algorithm::kFirstFitDecreasing;
  /// Capacity reserved for the X side in kBinPackCross; 0 means q/2.
  /// The Y side receives q - x_capacity.
  InputSize x_capacity = 0;
  /// Number of candidate splits evaluated by kBinPackCrossTuned.
  int tuning_steps = 33;
};

/// Human-readable algorithm name.
std::string X2YAlgorithmName(X2YAlgorithm algorithm);

/// Dispatches to the requested solver.
std::optional<MappingSchema> SolveX2Y(const X2YInstance& instance,
                                      X2YAlgorithm algorithm,
                                      const X2YOptions& options = {});

/// Individual solvers (see enum above).
std::optional<MappingSchema> SolveX2YSingleReducer(const X2YInstance& in);
std::optional<MappingSchema> SolveX2YNaiveCross(const X2YInstance& in);
std::optional<MappingSchema> SolveX2YBinPackCross(
    const X2YInstance& in, const X2YOptions& options = {});
std::optional<MappingSchema> SolveX2YBinPackCrossTuned(
    const X2YInstance& in, const X2YOptions& options = {});
std::optional<MappingSchema> SolveX2YBigSmall(const X2YInstance& in,
                                              const X2YOptions& options = {});

/// Picks the best applicable algorithm: single reducer when everything
/// fits, tuned bin-pack cross when all inputs are <= q/2, big-small
/// otherwise.
std::optional<MappingSchema> SolveX2YAuto(const X2YInstance& in,
                                          const X2YOptions& options = {});

}  // namespace msp

#endif  // MSP_CORE_X2Y_H_
