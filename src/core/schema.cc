#include "core/schema.h"

#include <algorithm>

#include "util/check.h"
#include "util/summary_stats.h"

namespace msp {

namespace {

template <typename SizeOfFn>
SchemaStats ComputeImpl(std::size_t num_inputs, uint64_t total_size,
                        const MappingSchema& schema, SizeOfFn size_of) {
  SchemaStats stats;
  stats.num_reducers = schema.num_reducers();
  if (schema.reducers.empty()) return stats;

  std::vector<uint64_t> loads;
  loads.reserve(schema.reducers.size());
  uint64_t copies = 0;
  for (const Reducer& reducer : schema.reducers) {
    uint64_t load = 0;
    for (InputId id : reducer) load += size_of(id);
    loads.push_back(load);
    copies += reducer.size();
    stats.max_inputs_per_reducer =
        std::max<uint64_t>(stats.max_inputs_per_reducer, reducer.size());
  }
  const SummaryStats load_stats = SummaryStats::Compute(loads);
  stats.communication_cost = static_cast<uint64_t>(load_stats.sum());
  stats.max_load = static_cast<uint64_t>(load_stats.max());
  stats.min_load = static_cast<uint64_t>(load_stats.min());
  stats.mean_load = load_stats.mean();
  stats.load_cv = load_stats.CoefficientOfVariation();
  stats.peak_to_mean = load_stats.PeakToMeanRatio();
  if (total_size > 0) {
    stats.replication_rate =
        static_cast<double>(stats.communication_cost) / total_size;
  }
  if (num_inputs > 0) {
    stats.mean_copies_per_input =
        static_cast<double>(copies) / static_cast<double>(num_inputs);
  }
  return stats;
}

}  // namespace

SchemaStats SchemaStats::Compute(const A2AInstance& instance,
                                 const MappingSchema& schema) {
  return ComputeImpl(instance.num_inputs(), instance.total_size(), schema,
                     [&](InputId id) {
                       MSP_CHECK_LT(id, instance.num_inputs());
                       return instance.size(id);
                     });
}

SchemaStats SchemaStats::Compute(const X2YInstance& instance,
                                 const MappingSchema& schema) {
  return ComputeImpl(instance.num_inputs(),
                     instance.total_x_size() + instance.total_y_size(), schema,
                     [&](InputId id) {
                       MSP_CHECK_LT(id, instance.num_inputs());
                       return instance.SizeOf(id);
                     });
}

std::vector<uint32_t> ComputeReplication(const MappingSchema& schema,
                                         std::size_t num_inputs) {
  std::vector<uint32_t> replication(num_inputs, 0);
  for (const Reducer& reducer : schema.reducers) {
    for (InputId id : reducer) {
      MSP_CHECK_LT(id, num_inputs);
      ++replication[id];
    }
  }
  return replication;
}

}  // namespace msp
