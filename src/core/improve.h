// Post-optimization of mapping schemas.
//
// The constructive algorithms sometimes leave "mergeable" reducers:
// two reducers whose union of inputs still fits in q can be collapsed
// into one, strictly reducing the reducer count and never breaking
// coverage (a merged reducer covers a superset of the pairs). This
// greedy merge pass is the library's ablation A3: how much of the gap
// to the lower bound is recoverable by local optimization. It is not
// part of the paper's constructions — it quantifies how tight they
// already are (see bench/bench_a3_improve.cc).

#ifndef MSP_CORE_IMPROVE_H_
#define MSP_CORE_IMPROVE_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/schema.h"

namespace msp {

/// Statistics of one improvement pass.
struct ImproveStats {
  uint64_t merges = 0;             // reducer pairs collapsed
  uint64_t reducers_before = 0;
  uint64_t reducers_after = 0;
  uint64_t communication_before = 0;
  uint64_t communication_after = 0;
};

/// Greedily merges reducers of `schema` while the merged input set
/// fits within `capacity`. `size_of(id)` must return the size of
/// input `id`. Duplicate inputs across merged reducers are unified
/// (which can also shrink communication). Deterministic: repeatedly
/// merges the lightest reducer into the best-fitting partner.
ImproveStats MergeReducers(const std::vector<InputSize>& sizes,
                           InputSize capacity, MappingSchema* schema);

/// Convenience overloads for the two instance types.
ImproveStats MergeReducers(const A2AInstance& instance,
                           MappingSchema* schema);
ImproveStats MergeReducers(const X2YInstance& instance,
                           MappingSchema* schema);

/// Removes inputs that cover no *new* pair in their reducer — i.e.,
/// every pair (input, other-member) is already covered elsewhere.
/// Reduces communication without changing coverage. Returns the
/// number of copies removed. Only valid for A2A coverage semantics.
uint64_t PruneRedundantCopiesA2A(const A2AInstance& instance,
                                 MappingSchema* schema);

}  // namespace msp

#endif  // MSP_CORE_IMPROVE_H_
