#include "core/exact.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/a2a.h"
#include "core/validate.h"
#include "core/x2y.h"
#include "util/check.h"
#include "util/math_util.h"

namespace msp {

namespace {

// Generic branch-and-bound over "outputs" — the list of required pairs.
// Works for both problems: the only problem-specific parts are the
// input sizes and the list of required pairs.
class SchemaSearch {
 public:
  SchemaSearch(std::vector<InputSize> sizes, uint64_t capacity,
               std::vector<std::pair<InputId, InputId>> required_pairs,
               uint64_t max_nodes)
      : sizes_(std::move(sizes)),
        capacity_(capacity),
        pairs_(std::move(required_pairs)),
        max_nodes_(max_nodes) {
    pair_of_.assign(sizes_.size(),
                    std::vector<int>(sizes_.size(), -1));
    for (std::size_t p = 0; p < pairs_.size(); ++p) {
      pair_of_[pairs_[p].first][pairs_[p].second] = static_cast<int>(p);
      pair_of_[pairs_[p].second][pairs_[p].first] = static_cast<int>(p);
    }
  }

  // Runs the search seeded with `upper_bound_schema` (a valid schema).
  // Returns false when the node budget was exhausted.
  bool Run(const MappingSchema& upper_bound_schema) {
    best_schema_ = upper_bound_schema;
    best_count_ = upper_bound_schema.num_reducers();
    covered_.assign(pairs_.size(), 0);
    reducers_.clear();
    loads_.clear();
    aborted_ = false;
    Dfs(0);
    return !aborted_;
  }

  const MappingSchema& best_schema() const { return best_schema_; }
  uint64_t nodes() const { return nodes_; }

 private:
  void Dfs(std::size_t next_pair_hint) {
    if (aborted_) return;
    if (++nodes_ > max_nodes_) {
      aborted_ = true;
      return;
    }
    if (reducers_.size() >= best_count_) return;
    // Find the first uncovered pair.
    std::size_t p = next_pair_hint;
    while (p < pairs_.size() && covered_[p] > 0) ++p;
    if (p == pairs_.size()) {
      best_count_ = reducers_.size();
      best_schema_.reducers = reducers_;
      return;
    }
    const InputId i = pairs_[p].first;
    const InputId j = pairs_[p].second;
    const InputSize wi = sizes_[i];
    const InputSize wj = sizes_[j];

    for (std::size_t r = 0; r < reducers_.size(); ++r) {
      const bool has_i =
          std::find(reducers_[r].begin(), reducers_[r].end(), i) !=
          reducers_[r].end();
      const bool has_j =
          std::find(reducers_[r].begin(), reducers_[r].end(), j) !=
          reducers_[r].end();
      if (has_i && has_j) continue;  // would already cover p
      if (has_i && loads_[r] + wj <= capacity_) {
        auto undo = AddMemberTracked(r, j);
        Dfs(p);
        UndoTracked(r, j, undo);
        if (aborted_) return;
      } else if (has_j && loads_[r] + wi <= capacity_) {
        auto undo = AddMemberTracked(r, i);
        Dfs(p);
        UndoTracked(r, i, undo);
        if (aborted_) return;
      } else if (!has_i && !has_j && loads_[r] + wi + wj <= capacity_) {
        auto undo_i = AddMemberTracked(r, i);
        auto undo_j = AddMemberTracked(r, j);
        Dfs(p);
        UndoTracked(r, j, undo_j);
        UndoTracked(r, i, undo_i);
        if (aborted_) return;
      }
    }
    // Open a fresh reducer {i, j}.
    reducers_.emplace_back();
    loads_.push_back(0);
    auto undo_i = AddMemberTracked(reducers_.size() - 1, i);
    auto undo_j = AddMemberTracked(reducers_.size() - 1, j);
    Dfs(p);
    UndoTracked(reducers_.size() - 1, j, undo_j);
    UndoTracked(reducers_.size() - 1, i, undo_i);
    reducers_.pop_back();
    loads_.pop_back();
  }

  // Tracked add/remove: records which required pairs had their
  // coverage counter touched so the undo is exact.
  std::vector<int> AddMemberTracked(std::size_t r, InputId id) {
    std::vector<int> touched;
    for (InputId other : reducers_[r]) {
      const int p = pair_of_[id][other];
      if (p >= 0) {
        ++covered_[p];
        touched.push_back(p);
      }
    }
    reducers_[r].push_back(id);
    loads_[r] += sizes_[id];
    return touched;
  }

  void UndoTracked(std::size_t r, InputId id, const std::vector<int>& touched) {
    MSP_DCHECK(!reducers_[r].empty() && reducers_[r].back() == id);
    reducers_[r].pop_back();
    loads_[r] -= sizes_[id];
    for (int p : touched) --covered_[p];
  }

  std::vector<InputSize> sizes_;
  uint64_t capacity_;
  std::vector<std::pair<InputId, InputId>> pairs_;
  uint64_t max_nodes_;
  std::vector<std::vector<int>> pair_of_;

  std::vector<Reducer> reducers_;
  std::vector<uint64_t> loads_;
  std::vector<int> covered_;  // coverage counters per required pair
  MappingSchema best_schema_;
  std::size_t best_count_ = 0;
  uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

std::optional<ExactSchemaResult> ExactMinReducersA2A(
    const A2AInstance& instance, const ExactOptions& options) {
  if (!instance.IsFeasible()) return std::nullopt;
  if (instance.num_inputs() < 2) {
    return ExactSchemaResult{MappingSchema{}, 0};
  }
  // Seed upper bound with the best heuristic schema.
  std::optional<MappingSchema> seed = SolveA2AAuto(instance);
  MSP_CHECK(seed.has_value());
  auto greedy = SolveA2AGreedyCover(instance);
  if (greedy.has_value() && greedy->num_reducers() < seed->num_reducers()) {
    seed = std::move(greedy);
  }

  std::vector<std::pair<InputId, InputId>> pairs;
  const std::size_t m = instance.num_inputs();
  pairs.reserve(PairCount(m));
  for (InputId i = 0; i < m; ++i) {
    for (InputId j = i + 1; j < m; ++j) pairs.push_back({i, j});
  }
  SchemaSearch search(instance.sizes(), instance.capacity(), std::move(pairs),
                      options.max_nodes);
  if (!search.Run(*seed)) return std::nullopt;
  MSP_DCHECK(ValidateA2A(instance, search.best_schema()).ok);
  return ExactSchemaResult{search.best_schema(), search.nodes()};
}

std::optional<ExactSchemaResult> ExactMinReducersX2Y(
    const X2YInstance& instance, const ExactOptions& options) {
  if (!instance.IsFeasible()) return std::nullopt;
  if (instance.num_x() == 0 || instance.num_y() == 0) {
    return ExactSchemaResult{MappingSchema{}, 0};
  }
  std::optional<MappingSchema> seed = SolveX2YAuto(instance);
  MSP_CHECK(seed.has_value());

  std::vector<InputSize> sizes = instance.x_sizes();
  sizes.insert(sizes.end(), instance.y_sizes().begin(),
               instance.y_sizes().end());
  std::vector<std::pair<InputId, InputId>> pairs;
  pairs.reserve(instance.NumOutputs());
  for (std::size_t i = 0; i < instance.num_x(); ++i) {
    for (std::size_t j = 0; j < instance.num_y(); ++j) {
      pairs.push_back({instance.XId(i), instance.YId(j)});
    }
  }
  SchemaSearch search(std::move(sizes), instance.capacity(), std::move(pairs),
                      options.max_nodes);
  if (!search.Run(*seed)) return std::nullopt;
  MSP_DCHECK(ValidateX2Y(instance, search.best_schema()).ok);
  return ExactSchemaResult{search.best_schema(), search.nodes()};
}

}  // namespace msp
