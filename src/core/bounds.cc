#include "core/bounds.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/math_util.h"

namespace msp {

uint64_t MaxInputsWithinBudget(const std::vector<InputSize>& sizes,
                               uint64_t budget) {
  std::vector<InputSize> sorted = sizes;
  std::sort(sorted.begin(), sorted.end());
  uint64_t count = 0;
  Uint128 used = 0;
  for (InputSize w : sorted) {
    if (used + w > budget) break;
    used += w;
    ++count;
  }
  return count;
}

A2ALowerBounds A2ALowerBounds::Compute(const A2AInstance& instance) {
  A2ALowerBounds lb;
  const std::size_t m = instance.num_inputs();
  if (m < 2) return lb;
  MSP_CHECK(instance.IsFeasible())
      << "lower bounds are undefined for infeasible instances";
  const uint64_t q = instance.capacity();
  const Uint128 total = instance.total_size();

  // Pair mass: P = (W^2 - sum w_i^2) / 2; per-reducer coverage <= q^2/2.
  Uint128 sum_sq = 0;
  for (InputSize w : instance.sizes()) sum_sq += Uint128{w} * w;
  const Uint128 two_p = total * total - sum_sq;  // == 2P
  lb.pair_mass = CeilDiv128(two_p, Uint128{q} * q);

  // Pair count.
  const uint64_t k_max = MaxInputsWithinBudget(instance.sizes(), q);
  if (k_max >= 2) {
    lb.pair_count = CeilDiv(PairCount(m), PairCount(k_max));
  } else {
    lb.pair_count = PairCount(m);  // one pair per reducer at best
  }

  // Replication / communication.
  Uint128 comm = 0;
  for (InputSize w : instance.sizes()) {
    const Uint128 partners = total - w;  // size of everything i must meet
    const uint64_t room = q - w;         // per-copy partner budget
    uint64_t copies = 1;
    if (partners > 0) {
      MSP_CHECK_GT(room, 0u);  // guaranteed by feasibility for m >= 2
      copies = std::max<uint64_t>(1, CeilDiv128(partners, room));
    }
    comm += Uint128{w} * copies;
  }
  lb.communication = CeilDiv128(comm, 1);
  lb.replication = CeilDiv128(comm, q);

  // Schönheim covering bound for equal sizes.
  if (instance.AllSizesEqual()) {
    const uint64_t k = q / instance.size(0);
    if (k >= 2) {
      const uint64_t inner = CeilDiv(m - 1, k - 1);
      lb.schonheim = CeilDiv(m * inner, k);
    }
  }

  lb.reducers = std::max({lb.pair_mass, lb.pair_count, lb.replication,
                          lb.schonheim, uint64_t{1}});
  return lb;
}

X2YLowerBounds X2YLowerBounds::Compute(const X2YInstance& instance) {
  X2YLowerBounds lb;
  const std::size_t m = instance.num_x();
  const std::size_t n = instance.num_y();
  if (m == 0 || n == 0) return lb;
  MSP_CHECK(instance.IsFeasible())
      << "lower bounds are undefined for infeasible instances";
  const uint64_t q = instance.capacity();

  // Pair mass: M = W_X * W_Y; a reducer with a units of X and b of Y
  // (a + b <= q) covers mass a*b <= q^2/4.
  const Uint128 mass = Uint128{instance.total_x_size()} *
                       instance.total_y_size();
  const Uint128 per_reducer = Uint128{q} * q / 4;
  lb.pair_mass = per_reducer == 0 ? mass == 0 ? 0 : 1
                                  : CeilDiv128(mass, per_reducer);

  // Pair count: maximize (#x)(#y) over smallest-first prefixes with
  // total size <= q.
  std::vector<InputSize> xs = instance.x_sizes();
  std::vector<InputSize> ys = instance.y_sizes();
  std::sort(xs.begin(), xs.end());
  std::sort(ys.begin(), ys.end());
  std::vector<Uint128> px(xs.size() + 1, 0);
  for (std::size_t i = 0; i < xs.size(); ++i) px[i + 1] = px[i] + xs[i];
  std::vector<Uint128> py(ys.size() + 1, 0);
  for (std::size_t j = 0; j < ys.size(); ++j) py[j + 1] = py[j] + ys[j];
  uint64_t best_product = 0;
  std::size_t b = ys.size();
  for (std::size_t a = 1; a <= xs.size(); ++a) {
    if (px[a] > q) break;
    while (b > 0 && px[a] + py[b] > q) --b;
    if (b == 0) break;
    best_product = std::max<uint64_t>(best_product, a * b);
  }
  const uint64_t outputs = instance.NumOutputs();
  lb.pair_count =
      best_product == 0 ? outputs : CeilDiv(outputs, best_product);

  // Replication / communication.
  Uint128 comm = 0;
  for (InputSize w : instance.x_sizes()) {
    const uint64_t room = q - w;
    uint64_t copies = 1;
    if (instance.total_y_size() > 0) {
      MSP_CHECK_GT(room, 0u);
      copies = std::max<uint64_t>(1, CeilDiv128(instance.total_y_size(), room));
    }
    comm += Uint128{w} * copies;
  }
  for (InputSize w : instance.y_sizes()) {
    const uint64_t room = q - w;
    uint64_t copies = 1;
    if (instance.total_x_size() > 0) {
      MSP_CHECK_GT(room, 0u);
      copies = std::max<uint64_t>(1, CeilDiv128(instance.total_x_size(), room));
    }
    comm += Uint128{w} * copies;
  }
  lb.communication = CeilDiv128(comm, 1);
  lb.replication = CeilDiv128(comm, q);

  lb.reducers =
      std::max({lb.pair_mass, lb.pair_count, lb.replication, uint64_t{1}});
  return lb;
}

}  // namespace msp
