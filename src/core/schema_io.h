// Plain-text serialization of mapping schemas.
//
// Format (line-oriented, '#' comments allowed):
//   mapping-schema v1
//   reducers <z>
//   <id> <id> ...        # one line per reducer, input ids
//
// Useful for exporting schemas to external MapReduce drivers and for
// storing regression fixtures. This is the interchange format between
// the mspctl subcommands (solve-a2a/solve-x2y emit it; validate and
// improve consume it).

#ifndef MSP_CORE_SCHEMA_IO_H_
#define MSP_CORE_SCHEMA_IO_H_

#include <optional>
#include <string>

#include "core/schema.h"

namespace msp {

/// Serializes `schema` into the v1 text format.
std::string SchemaToText(const MappingSchema& schema);

/// Parses the v1 text format. Returns nullopt on malformed input
/// (wrong header, reducer-count mismatch, non-numeric ids).
std::optional<MappingSchema> SchemaFromText(const std::string& text);

}  // namespace msp

#endif  // MSP_CORE_SCHEMA_IO_H_
