// Exact minimum-reducer solvers by branch and bound.
//
// Both mapping schema problems are NP-complete — the central
// intractability theorems of the paper (Afrati et al., EDBT 2015;
// extended arXiv:1507.04461, Sec. "Intractability": reductions from
// partition-style problems for A2A and X2Y alike) — so these solvers
// are exponential and only practical for toy instances (roughly
// m <= 9 for A2A, m*n <= 20 for X2Y). They exist to measure the
// optimality gap of the heuristics (experiment T2) and to demonstrate
// the blow-up empirically; the polynomial constructions in a2a.h /
// x2y.h are the paper's answer for real instance sizes.
//
// The search branches on the first uncovered output pair: the pair can
// be covered by extending any existing reducer (adding one or both
// endpoints, capacity permitting) or by opening a fresh reducer with
// exactly the two endpoints. This enumeration visits every irredundant
// schema, hence finds the optimum.

#ifndef MSP_CORE_EXACT_H_
#define MSP_CORE_EXACT_H_

#include <cstdint>
#include <optional>

#include "core/instance.h"
#include "core/schema.h"

namespace msp {

/// Result of an exact search.
struct ExactSchemaResult {
  MappingSchema schema;     // an optimal schema
  uint64_t nodes_explored = 0;
};

/// Options controlling the exponential search.
struct ExactOptions {
  /// Abort (returning nullopt) after this many branch nodes.
  uint64_t max_nodes = 20'000'000;
};

/// Minimum-reducer schema for an A2A instance, or nullopt when the
/// instance is infeasible or the node budget is exhausted.
std::optional<ExactSchemaResult> ExactMinReducersA2A(
    const A2AInstance& instance, const ExactOptions& options = {});

/// Minimum-reducer schema for an X2Y instance; same conventions.
std::optional<ExactSchemaResult> ExactMinReducersX2Y(
    const X2YInstance& instance, const ExactOptions& options = {});

}  // namespace msp

#endif  // MSP_CORE_EXACT_H_
