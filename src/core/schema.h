// Mapping schemas: the assignment of inputs to reducers.
//
// A MappingSchema is a list of reducers; each reducer lists the ids of
// the inputs assigned to it. The same input may (and usually must)
// appear in many reducers — that replication is exactly the
// communication cost the paper reasons about.
//
// Paper map (Afrati et al., EDBT 2015; extended arXiv:1507.04461):
// MappingSchema is the paper's central definition (Sec. "Mapping
// Schema and the Tradeoffs": an assignment of inputs to reducers such
// that no reducer exceeds capacity q and every output's inputs meet
// at some reducer — validity itself is checked by validate.h).
// SchemaStats measures the quantities the paper's tradeoffs range
// over: number of reducers (degree of parallelism), total
// communication cost, and per-reducer load balance. ComputeReplication
// evaluates the replication vector r_i bounded below in Sec. "Lower
// Bounds".

#ifndef MSP_CORE_SCHEMA_H_
#define MSP_CORE_SCHEMA_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"

namespace msp {

/// One reducer's input list.
using Reducer = std::vector<InputId>;

/// An assignment of inputs to reducers.
struct MappingSchema {
  std::vector<Reducer> reducers;

  std::size_t num_reducers() const { return reducers.size(); }

  /// Appends a reducer and returns its index.
  std::size_t AddReducer(Reducer reducer) {
    reducers.push_back(std::move(reducer));
    return reducers.size() - 1;
  }
};

/// Load and replication statistics of a schema. Communication cost is
/// measured as in the paper: the total number of size units moved from
/// the map phase to the reduce phase (each copy of input i costs w_i).
struct SchemaStats {
  uint64_t num_reducers = 0;
  uint64_t communication_cost = 0;  // sum over reducers of their loads
  uint64_t max_load = 0;            // heaviest reducer
  uint64_t min_load = 0;            // lightest reducer
  double mean_load = 0.0;
  double load_cv = 0.0;            // coefficient of variation of loads
  double peak_to_mean = 0.0;       // max_load / mean_load
  double replication_rate = 0.0;   // communication_cost / total input size
  double mean_copies_per_input = 0.0;
  uint64_t max_inputs_per_reducer = 0;

  /// Computes stats of `schema` against the sizes of `instance`.
  static SchemaStats Compute(const A2AInstance& instance,
                             const MappingSchema& schema);
  /// X2Y overload (uses global-id sizes).
  static SchemaStats Compute(const X2YInstance& instance,
                             const MappingSchema& schema);
};

/// Number of reducers each input appears in ("replication vector").
/// result[i] == 0 means input i is never assigned. The paper's
/// replication lower bound states that in any valid A2A schema,
/// result[i] >= ceil((W - w_i) / (q - w_i)).
std::vector<uint32_t> ComputeReplication(const MappingSchema& schema,
                                         std::size_t num_inputs);

}  // namespace msp

#endif  // MSP_CORE_SCHEMA_H_
