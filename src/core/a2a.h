// Mapping-schema construction algorithms for the A2A problem.
//
// The A2A mapping schema problem is NP-complete (paper, Sec. "Mapping
// Schema"), so the library ships the paper's approximation algorithms
// plus baselines:
//
//  * kSingleReducer    — everything in one reducer when W <= q.
//  * kNaiveAllPairs    — one reducer per pair; maximal parallelism and
//                        maximal communication (baseline).
//  * kEqualGrouping    — equal-sized inputs: split the m inputs into
//                        groups of floor(k/2), k = floor(q/w), one
//                        reducer per pair of groups (~2x optimal).
//  * kBinPackPairing   — different sizes, all w_i <= q/2: bin-pack into
//                        bins of capacity floor(q/2) and use one
//                        reducer per pair of bins.
//  * kBinPackTriples   — extension: sizes <= q/3, pack into q/3-bins
//                        and cover all bin pairs by bin triples
//                        (greedy), trading bigger reducers for fewer
//                        of them.
//  * kBigSmall         — general sizes: inputs larger than q/2 get
//                        dedicated reducers against bins of the small
//                        inputs packed to the residual capacity;
//                        small-small pairs fall back to kBinPackPairing.
//  * kGreedyCover      — pair-stream first-fit covering (baseline).
//
// All solvers return schemas that pass ValidateA2A, or nullopt when the
// algorithm's precondition (or instance feasibility) fails.
//
// Paper map (Afrati et al., EDBT 2015; extended arXiv:1507.04461):
//  * NP-completeness of the A2A mapping schema problem — the paper's
//    first intractability theorem (Sec. "Intractability"); motivates
//    every approximation below.
//  * kEqualGrouping — the grouping technique of Sec. "The A2A Mapping
//    Schema Problem for Equal-Sized Inputs"; uses at most ~2x the
//    optimal number of reducers.
//  * kBinPackPairing — the bin-packing-based approximation of Sec.
//    "The A2A Mapping Schema Problem for Different-Sized Inputs"
//    (inputs of size <= q/2 packed into bins of capacity q/2, one
//    reducer per bin pair).
//  * kBigSmall — the same section's extension to instances with
//    inputs larger than q/2.
//  * kBinPackTriples / SolveA2ABinPackKGroups — this library's
//    generalization of the pairing construction (not in the paper):
//    k bins of capacity q/k per reducer, approaching the pair-mass
//    lower bound as k grows.

#ifndef MSP_CORE_A2A_H_
#define MSP_CORE_A2A_H_

#include <optional>
#include <string>

#include "binpack/algorithms.h"
#include "core/instance.h"
#include "core/schema.h"

namespace msp {

/// Selects an A2A schema-construction algorithm.
enum class A2AAlgorithm {
  kSingleReducer,
  kNaiveAllPairs,
  kEqualGrouping,
  kBinPackPairing,
  kBinPackTriples,
  kBigSmall,
  kGreedyCover,
};

/// Options shared by the A2A solvers.
struct A2AOptions {
  /// Bin-packing heuristic used wherever the algorithm packs inputs.
  bp::Algorithm bin_packer = bp::Algorithm::kFirstFitDecreasing;
};

/// Human-readable algorithm name.
std::string A2AAlgorithmName(A2AAlgorithm algorithm);

/// Dispatches to the requested solver.
std::optional<MappingSchema> SolveA2A(const A2AInstance& instance,
                                      A2AAlgorithm algorithm,
                                      const A2AOptions& options = {});

/// Individual solvers (see enum above for semantics).
std::optional<MappingSchema> SolveA2ASingleReducer(const A2AInstance& in);
std::optional<MappingSchema> SolveA2ANaiveAllPairs(const A2AInstance& in);
std::optional<MappingSchema> SolveA2AEqualGrouping(const A2AInstance& in);
std::optional<MappingSchema> SolveA2ABinPackPairing(
    const A2AInstance& in, const A2AOptions& options = {});
std::optional<MappingSchema> SolveA2ABinPackTriples(
    const A2AInstance& in, const A2AOptions& options = {});
std::optional<MappingSchema> SolveA2ABigSmall(const A2AInstance& in,
                                              const A2AOptions& options = {});
std::optional<MappingSchema> SolveA2AGreedyCover(const A2AInstance& in);

/// Generalization of pairing/triples: pack inputs into bins of
/// capacity floor(q/k) and cover all bin pairs greedily with groups of
/// at most k bins (each group is one reducer of load <= q). Larger k
/// needs smaller inputs (max size <= q/k) but covers pairs more
/// densely: the reducer count approaches the pair-mass lower bound as
/// k grows. k = 2 reproduces kBinPackPairing, k = 3 kBinPackTriples.
std::optional<MappingSchema> SolveA2ABinPackKGroups(
    const A2AInstance& in, int bins_per_reducer,
    const A2AOptions& options = {});

/// Picks the best applicable paper algorithm for the instance: equal
/// grouping for equal sizes, bin-pack pairing when all inputs are
/// small, big-small otherwise; falls back to single reducer when
/// everything fits. This is the recommended entry point for users.
std::optional<MappingSchema> SolveA2AAuto(const A2AInstance& in,
                                          const A2AOptions& options = {});

}  // namespace msp

#endif  // MSP_CORE_A2A_H_
