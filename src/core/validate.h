// Mapping-schema validity checking.
//
// A schema is valid (the paper's definition of a mapping schema,
// Sec. "Mapping Schema and the Tradeoffs") when
//  (1) every reducer's load is within the capacity q, and
//  (2) every output's two inputs meet in at least one reducer:
//      A2A — every unordered pair of inputs;
//      X2Y — every (x, y) cross pair.
//
// The checkers are exhaustive (bitset over all pairs) and are the
// oracle for every algorithm test and for the end-to-end joins.

#ifndef MSP_CORE_VALIDATE_H_
#define MSP_CORE_VALIDATE_H_

#include <string>

#include "core/instance.h"
#include "core/schema.h"

namespace msp {

/// Outcome of a validation run.
struct ValidationResult {
  bool ok = false;
  std::string error;  // empty when ok

  /// Pairs that met in at least one reducer (for coverage reporting).
  uint64_t covered_outputs = 0;
  /// Total outputs the instance requires.
  uint64_t required_outputs = 0;

  static ValidationResult Ok(uint64_t covered, uint64_t required) {
    return {true, "", covered, required};
  }
  static ValidationResult Fail(std::string why, uint64_t covered = 0,
                               uint64_t required = 0) {
    return {false, std::move(why), covered, required};
  }
};

/// Checks schema validity for an A2A instance.
ValidationResult ValidateA2A(const A2AInstance& instance,
                             const MappingSchema& schema);

/// Checks schema validity for an X2Y instance (ids are global; see
/// X2YInstance). Pairs within the same side are not required, but
/// capacity still applies to every input placed in a reducer.
ValidationResult ValidateX2Y(const X2YInstance& instance,
                             const MappingSchema& schema);

}  // namespace msp

#endif  // MSP_CORE_VALIDATE_H_
