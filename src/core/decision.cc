#include "core/decision.h"

namespace msp {

DecisionAnswer ExistsSchemaA2A(const A2AInstance& instance, uint64_t z,
                               const ExactOptions& options) {
  if (instance.num_inputs() < 2) return DecisionAnswer::kYes;
  if (!instance.IsFeasible()) return DecisionAnswer::kNo;
  const auto exact = ExactMinReducersA2A(instance, options);
  if (!exact.has_value()) return DecisionAnswer::kUnknown;
  return exact->schema.num_reducers() <= z ? DecisionAnswer::kYes
                                           : DecisionAnswer::kNo;
}

DecisionAnswer ExistsSchemaX2Y(const X2YInstance& instance, uint64_t z,
                               const ExactOptions& options) {
  if (instance.num_x() == 0 || instance.num_y() == 0) {
    return DecisionAnswer::kYes;
  }
  if (!instance.IsFeasible()) return DecisionAnswer::kNo;
  const auto exact = ExactMinReducersX2Y(instance, options);
  if (!exact.has_value()) return DecisionAnswer::kUnknown;
  return exact->schema.num_reducers() <= z ? DecisionAnswer::kYes
                                           : DecisionAnswer::kNo;
}

}  // namespace msp
