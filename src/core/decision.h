// The decision variants of the mapping schema problems — the form in
// which the paper proves NP-completeness (Afrati et al., EDBT 2015;
// extended arXiv:1507.04461, Sec. "Intractability"): "given z
// reducers of capacity q, does a valid mapping schema exist?"
//
// These wrap the exact branch-and-bound search with a reducer budget,
// so they are exponential like the optimization variant; they exist
// for completeness of the API and for the T2 experiment.

#ifndef MSP_CORE_DECISION_H_
#define MSP_CORE_DECISION_H_

#include <cstdint>
#include <optional>

#include "core/exact.h"
#include "core/instance.h"

namespace msp {

/// Three-valued answer: the search can prove either way or run out of
/// node budget.
enum class DecisionAnswer { kYes, kNo, kUnknown };

/// Does a valid A2A schema with at most `z` reducers exist?
DecisionAnswer ExistsSchemaA2A(const A2AInstance& instance, uint64_t z,
                               const ExactOptions& options = {});

/// Does a valid X2Y schema with at most `z` reducers exist?
DecisionAnswer ExistsSchemaX2Y(const X2YInstance& instance, uint64_t z,
                               const ExactOptions& options = {});

}  // namespace msp

#endif  // MSP_CORE_DECISION_H_
