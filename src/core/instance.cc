#include "core/instance.h"

#include <algorithm>

#include "util/math_util.h"

namespace msp {

namespace {

bool SizesValid(const std::vector<InputSize>& sizes, InputSize capacity) {
  if (capacity == 0) return false;
  for (InputSize w : sizes) {
    if (w == 0 || w > capacity) return false;
  }
  return true;
}

}  // namespace

std::optional<A2AInstance> A2AInstance::Create(std::vector<InputSize> sizes,
                                               InputSize capacity) {
  if (!SizesValid(sizes, capacity)) return std::nullopt;
  return A2AInstance(std::move(sizes), capacity);
}

A2AInstance::A2AInstance(std::vector<InputSize> sizes, InputSize capacity)
    : sizes_(std::move(sizes)), capacity_(capacity) {
  min_size_ = capacity_;
  for (InputSize w : sizes_) {
    total_size_ += w;
    min_size_ = std::min(min_size_, w);
    if (w >= max_size_) {
      second_max_size_ = max_size_;
      max_size_ = w;
    } else if (w > second_max_size_) {
      second_max_size_ = w;
    }
  }
  if (sizes_.empty()) min_size_ = 0;
}

bool A2AInstance::AllSizesEqual() const {
  return sizes_.empty() || min_size_ == max_size_;
}

bool A2AInstance::IsFeasible() const {
  if (sizes_.size() < 2) return true;
  return max_size_ + second_max_size_ <= capacity_;
}

uint64_t A2AInstance::NumOutputs() const { return PairCount(sizes_.size()); }

std::optional<X2YInstance> X2YInstance::Create(
    std::vector<InputSize> x_sizes, std::vector<InputSize> y_sizes,
    InputSize capacity) {
  if (!SizesValid(x_sizes, capacity) || !SizesValid(y_sizes, capacity)) {
    return std::nullopt;
  }
  return X2YInstance(std::move(x_sizes), std::move(y_sizes), capacity);
}

X2YInstance::X2YInstance(std::vector<InputSize> x_sizes,
                         std::vector<InputSize> y_sizes, InputSize capacity)
    : x_sizes_(std::move(x_sizes)),
      y_sizes_(std::move(y_sizes)),
      capacity_(capacity) {
  for (InputSize w : x_sizes_) {
    total_x_ += w;
    max_x_ = std::max(max_x_, w);
  }
  for (InputSize w : y_sizes_) {
    total_y_ += w;
    max_y_ = std::max(max_y_, w);
  }
}

bool X2YInstance::IsFeasible() const {
  if (x_sizes_.empty() || y_sizes_.empty()) return true;
  return max_x_ + max_y_ <= capacity_;
}

uint64_t X2YInstance::NumOutputs() const {
  return static_cast<uint64_t>(x_sizes_.size()) * y_sizes_.size();
}

}  // namespace msp
