// ClusterSimulator — executes update traces on the MapReduce engine
// and differentially verifies predicted vs. actually re-shuffled
// bytes.
//
// The paper's mapping schemas exist to minimize communication cost,
// but the online layer's churn ledger is copy accounting: "what the
// OnlineAssigner claims it moved". This simulator closes the loop with
// the execution engine. It owns one OnlineAssigner and one
// SimulatedCluster, and per trace update:
//
//  1. applies the update to the assigner with the move log attached,
//     capturing the *predicted* churn (the ledger) and the re-shuffle
//     plan (the ledger's itemization, moves.h);
//  2. executes the plan on the engine — one real record per shipped
//     copy, routed by a RoutingPartitioner, weighed by the engine's
//     shuffle accounting — producing the *executed* bytes, records,
//     and per-reducer loads;
//  3. reconciles the two exactly (per step and cumulatively): executed
//     re-shuffled bytes must equal predicted churn bytes, shipped
//     records must equal inputs moved, drops must equal inputs
//     dropped, and the placement reached by executing every plan so
//     far must equal the assigner's live schema reducer for reducer;
//  4. optionally re-checks the whole partition on the engine (a full
//     job over the alive inputs: every required pair co-located, no
//     reducer past capacity).
//
// Any gap — a move the ledger counts but no engine shuffle pays, or
// bytes the engine ships that the ledger missed — fails the step and
// is reported. `mspctl simulate` and bench_c1_simulator drive this;
// tests/sim_test.cc enforces a zero gap on every trace shape.

#ifndef MSP_SIM_SIMULATOR_H_
#define MSP_SIM_SIMULATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "online/assigner.h"
#include "online/moves.h"
#include "online/trace.h"
#include "sim/cluster.h"

namespace msp::sim {

/// Construction-time configuration.
struct SimConfig {
  /// Assigner configuration (shape, capacity, policy, backends).
  online::OnlineConfig online;
  /// Worker threads of the engine executing re-shuffle and oracle jobs
  /// (the simulated cluster's shards).
  std::size_t shards = 1;
  /// Policy window: the escalation policy runs once per `batch`
  /// applied updates (0/1 = after every update), mirroring
  /// `mspctl online --batch`.
  std::size_t batch = 0;
  /// Run the engine-side partition oracle every N applied steps
  /// (0 disables; it is a full job over the alive inputs).
  uint64_t oracle_every = 0;
  /// Keep one engine worker pool alive across the simulation's jobs
  /// (see SimulatedCluster::Config::persistent_pool). Off restores the
  /// seed behavior: every delta job spawns and joins fresh workers.
  bool persistent_pool = true;
  /// Optional metrics sink, fanned out to the assigner (online.*
  /// series) and the simulated cluster (mr.* engine series), so one
  /// snapshot reports engine bytes/records next to predicted churn.
  /// Not owned; may be null.
  obs::Registry* metrics = nullptr;
};

/// Outcome of one simulated step. Predicted numbers come from the
/// assigner's churn ledger; executed numbers from the engine.
struct StepRecord {
  uint64_t step = 0;  // 1-based position in the replayed stream
  online::UpdateKind kind = online::UpdateKind::kAddInput;
  bool applied = false;
  bool skipped = false;  // trace id referenced an unknown/rejected add
  bool replanned = false;
  bool checkpoint = false;  // trailing batch-window policy decision

  uint64_t predicted_moved_inputs = 0;
  uint64_t predicted_moved_bytes = 0;
  uint64_t predicted_dropped_inputs = 0;
  uint64_t executed_shipped_records = 0;
  uint64_t executed_shipped_bytes = 0;
  uint64_t executed_dropped_records = 0;

  uint64_t live_reducers = 0;     // after the step
  uint64_t max_reducer_load = 0;  // after the step

  bool reconciled = false;    // executed == predicted, all three pairs
  bool placement_ok = false;  // cluster placement == live schema

  bool operator==(const StepRecord&) const = default;
};

/// Aggregates of a whole run.
struct SimReport {
  std::vector<StepRecord> steps;

  uint64_t predicted_bytes = 0;
  uint64_t executed_bytes = 0;
  uint64_t predicted_inputs = 0;
  uint64_t executed_records = 0;
  uint64_t predicted_drops = 0;
  uint64_t executed_drops = 0;

  uint64_t reshuffle_jobs = 0;  // engine delta jobs actually run
  uint64_t oracle_checks = 0;
  uint64_t mismatched_steps = 0;   // reconciliation failures
  uint64_t placement_failures = 0;
  uint64_t oracle_failures = 0;
  uint64_t rejected = 0;  // assigner refused the update
  uint64_t skipped = 0;   // untranslatable trace ids

  std::string first_error;

  /// True when every step reconciled exactly and every placement and
  /// oracle check passed.
  bool ok() const {
    return mismatched_steps == 0 && placement_failures == 0 &&
           oracle_failures == 0;
  }

  bool operator==(const SimReport&) const = default;
};

/// See the file comment. Not thread-safe; one simulator drives one
/// instance's stream.
class ClusterSimulator {
 public:
  explicit ClusterSimulator(const SimConfig& config);
  ~ClusterSimulator();

  ClusterSimulator(const ClusterSimulator&) = delete;
  ClusterSimulator& operator=(const ClusterSimulator&) = delete;

  /// Applies one update (ids are live assigner ids) and executes its
  /// re-shuffle plan. The returned record is also appended to the
  /// report.
  StepRecord Step(const online::Update& update);

  /// Replays a whole trace with trace-id translation (remove/resize
  /// targets of rejected adds are skipped, as in `mspctl online`),
  /// including the trailing batch-window checkpoint. Returns
  /// `report().ok()`.
  bool ReplayTrace(const online::UpdateTrace& trace);

  const SimReport& report() const { return report_; }
  const online::OnlineAssigner& assigner() const { return assigner_; }
  const SimulatedCluster& cluster() const { return cluster_; }

  /// Per-step CSV projection (header + one row per StepRecord), used
  /// by `mspctl simulate --csv` and the benches.
  static std::vector<std::string> CsvHeader();
  static std::vector<std::string> CsvRow(const StepRecord& record);

 private:
  /// Executes `plan_`, reconciles against `churn`, and fills
  /// `record`'s executed/reconciliation fields and the report totals.
  /// The caller appends the record to the report.
  void ExecuteAndReconcile(const online::ChurnStats& churn,
                           StepRecord* record);

  SimConfig config_;
  online::ReshufflePlan plan_;  // declared before the assigner holding
                                // a pointer to it
  online::OnlineAssigner assigner_;
  SimulatedCluster cluster_;
  SimReport report_;
  uint64_t steps_seen_ = 0;
  uint64_t applied_steps_ = 0;
  /// sim.alloc_* ledger handles (null without a metrics sink).
  obs::Counter* alloc_bytes_ = nullptr;
  obs::Counter* allocs_ = nullptr;
};

}  // namespace msp::sim

#endif  // MSP_SIM_SIMULATOR_H_
