// The simulated cluster: a persistent data placement driven by
// re-shuffle plans, executed on the MapReduce engine.
//
// The online layer (src/online) reasons about churn as bookkeeping;
// this class makes it physical. It holds the cluster's current
// placement — which input copies live at which reducer, keyed by the
// stable reducer uids LiveState assigns — and advances it only by
// executing ReshufflePlans: every kShip op becomes one real record
// (payload materialized at the copy's byte size) routed through a
// RoutingPartitioner and delivered by a MapReduceEngine shuffle, so
// "bytes re-shuffled" is measured by the engine's own communication
// accounting, not copied from the plan; kDrop ops are local deletes
// (free, exactly as the churn ledger treats them).
//
// Two independent checks close the loop against the online layer:
//  * MatchesLiveState — the placement reached by executing the plans
//    must equal the assigner's live schema, reducer by reducer (uid,
//    members, and byte load);
//  * OracleCheck — a full engine job over the live inputs, partitioned
//    by the live schema, must co-locate every required pair within
//    capacity (the engine-side analogue of ValidateA2A/ValidateX2Y).

#ifndef MSP_SIM_CLUSTER_H_
#define MSP_SIM_CLUSTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "mapreduce/metrics.h"
#include "online/moves.h"
#include "online/repair.h"

namespace msp {
class ThreadPool;  // util/thread_pool.h
}

namespace msp::sim {

/// Ceiling on a single copy's materialized payload. The simulator
/// builds real records (one byte per size unit) so the engine can
/// weigh them; a trace with astronomic sizes must fail with an error,
/// not an allocation storm.
inline constexpr InputSize kMaxSimPayloadBytes = 1 << 20;

/// See the file comment.
class SimulatedCluster {
 public:
  struct Config {
    /// Worker threads of the engine executing re-shuffle jobs (the
    /// simulated cluster's shards).
    std::size_t workers = 1;
    /// Optional metrics sink: every engine job run by the cluster
    /// publishes mr.* series (kind="reshuffle" for Execute jobs,
    /// kind="oracle" for OracleCheck jobs). Not owned; may be null.
    obs::Registry* metrics = nullptr;
    /// Keep one worker pool alive across engine jobs. A step's delta
    /// re-shuffle is a tiny job, so thread spin-up dominates it; the
    /// persistent pool pays that cost once per cluster instead of
    /// three times per job. Off = the seed behavior (each engine run
    /// spawns and joins its own workers), kept for benchmarks.
    bool persistent_pool = true;
  };

  /// Outcome of executing one re-shuffle plan.
  struct Outcome {
    bool ok = true;           // plan applied and engine counters agree
    uint64_t shipped_records = 0;  // engine-delivered record copies
    uint64_t shipped_bytes = 0;    // engine-measured shuffle bytes
    uint64_t dropped_records = 0;  // local deletes (no bytes on the wire)
    std::string error;
  };

  explicit SimulatedCluster(Config config) : config_(config) {}
  ~SimulatedCluster();  // out of line: pool_ sees ThreadPool complete

  /// Applies `plan` in order to the placement and executes the ships
  /// as one engine job (no job when the plan ships nothing). The
  /// returned shipped counters come from the engine's JobMetrics; the
  /// per-reducer delivered bytes/records are cross-checked against the
  /// plan's per-uid totals, and any disagreement (or an inconsistent
  /// plan: shipping a copy already hosted, dropping one that is not)
  /// fails the outcome.
  Outcome Execute(const online::ReshufflePlan& plan);

  /// True when the placement equals `state`'s live schema exactly:
  /// same reducer uids, same member sets, and byte loads matching
  /// `state.loads` under the current sizes.
  bool MatchesLiveState(const online::LiveState& state,
                        std::string* error) const;

  /// Engine-side schema oracle: runs a full job over the alive inputs
  /// partitioned by the live schema and verifies that every required
  /// pair meets at some reducer, that no reducer receives more than
  /// `state.capacity` bytes, and that per-reducer delivered bytes
  /// equal the assigner's loads. Trivially true below two inputs.
  bool OracleCheck(const online::LiveState& state, std::string* error) const;

  /// Reducers currently holding data.
  std::size_t num_reducers() const { return hosted_.size(); }

 private:
  /// The shared engine pool (lazily spawned), or null when
  /// Config::persistent_pool is off. `mutable` because OracleCheck is
  /// logically const but still runs its job on the shared workers;
  /// callers already serialize Execute/OracleCheck, matching the
  /// one-Run-at-a-time contract of EngineConfig::pool.
  ThreadPool* WorkerPool() const;

  Config config_;
  mutable std::unique_ptr<ThreadPool> pool_;
  /// uid -> hosted input copies. Ordered so iteration (and with it
  /// every failure message) is deterministic.
  std::map<uint64_t, std::set<InputId>> hosted_;
};

}  // namespace msp::sim

#endif  // MSP_SIM_CLUSTER_H_
