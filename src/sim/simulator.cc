#include "sim/simulator.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "obs/alloc.h"
#include "obs/span.h"

namespace msp::sim {

namespace {

using online::ChurnStats;
using online::Update;
using online::UpdateKind;
using online::UpdateResult;

const char* KindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kAddInput:
      return "add";
    case UpdateKind::kRemoveInput:
      return "remove";
    case UpdateKind::kResizeInput:
      return "resize";
    case UpdateKind::kSetCapacity:
      return "setq";
  }
  return "?";
}

// The assigner inherits the simulator's metrics sink unless the caller
// wired its own — so one registry snapshot holds online.* churn next
// to the engine's mr.* series.
online::OnlineConfig SimOnlineConfig(const SimConfig& config) {
  online::OnlineConfig oc = config.online;
  if (oc.metrics == nullptr) oc.metrics = config.metrics;
  return oc;
}

}  // namespace

ClusterSimulator::ClusterSimulator(const SimConfig& config)
    : config_(config),
      assigner_(SimOnlineConfig(config)),
      cluster_(SimulatedCluster::Config{
          .workers = config.shards == 0 ? 1 : config.shards,
          .metrics = config.metrics,
          .persistent_pool = config.persistent_pool}) {
  assigner_.SetMoveLog(&plan_);
  if (obs::Registry* reg = config_.metrics) {
    alloc_bytes_ = reg->counter("sim.alloc_bytes_total");
    allocs_ = reg->counter("sim.allocs_total");
  }
}

ClusterSimulator::~ClusterSimulator() { assigner_.SetMoveLog(nullptr); }

StepRecord ClusterSimulator::Step(const Update& update) {
  obs::Span span("sim.step");
  obs::AllocScope alloc_scope(alloc_bytes_, allocs_);
  StepRecord record;
  record.step = ++steps_seen_;
  record.kind = update.kind;
  span.Arg("kind", KindName(update.kind));

  plan_.clear();
  UpdateResult result;
  if (config_.batch <= 1) {
    result = assigner_.Apply(update);
  } else {
    result = assigner_.ApplyDeferred(update);
    if (result.applied &&
        assigner_.pending_decision_updates() >= config_.batch) {
      const UpdateResult decision = assigner_.PolicyCheckpoint();
      result.replanned = decision.replanned;
      result.churn += decision.churn;
    }
  }
  record.applied = result.applied;
  record.replanned = result.replanned;
  if (!result.applied) {
    ++report_.rejected;
    // A rejected update must leave the live schema untouched — an
    // empty plan reconciles trivially, and the placement check below
    // still runs.
  } else {
    ++applied_steps_;
  }
  ExecuteAndReconcile(result.churn, &record);
  span.Arg("applied", record.applied);
  span.Arg("executed_bytes", record.executed_shipped_bytes);

  if (record.applied && config_.oracle_every != 0 &&
      applied_steps_ % config_.oracle_every == 0) {
    ++report_.oracle_checks;
    std::string oracle_error;
    if (!cluster_.OracleCheck(assigner_.live_state(), &oracle_error)) {
      ++report_.oracle_failures;
      if (report_.first_error.empty()) {
        report_.first_error = "step " + std::to_string(record.step) +
                              " engine oracle: " + oracle_error;
      }
    }
  }
  report_.steps.push_back(record);
  return record;
}

void ClusterSimulator::ExecuteAndReconcile(const ChurnStats& churn,
                                           StepRecord* record) {
  record->predicted_moved_inputs = churn.inputs_moved;
  record->predicted_moved_bytes = churn.bytes_moved;
  record->predicted_dropped_inputs = churn.inputs_dropped;

  const bool ran_job = std::any_of(
      plan_.begin(), plan_.end(), [](const online::ReshuffleOp& op) {
        return op.kind == online::ReshuffleOp::Kind::kShip;
      });
  const SimulatedCluster::Outcome outcome = cluster_.Execute(plan_);
  plan_.clear();
  if (ran_job && outcome.ok) ++report_.reshuffle_jobs;
  record->executed_shipped_records = outcome.shipped_records;
  record->executed_shipped_bytes = outcome.shipped_bytes;
  record->executed_dropped_records = outcome.dropped_records;

  const online::LiveState& state = assigner_.live_state();
  record->live_reducers = state.reducers.size();
  record->max_reducer_load =
      state.loads.empty()
          ? 0
          : *std::max_element(state.loads.begin(), state.loads.end());

  record->reconciled =
      outcome.ok &&
      outcome.shipped_bytes == record->predicted_moved_bytes &&
      outcome.shipped_records == record->predicted_moved_inputs &&
      outcome.dropped_records == record->predicted_dropped_inputs;
  std::string placement_error;
  record->placement_ok = cluster_.MatchesLiveState(state, &placement_error);

  report_.predicted_bytes += record->predicted_moved_bytes;
  report_.executed_bytes += record->executed_shipped_bytes;
  report_.predicted_inputs += record->predicted_moved_inputs;
  report_.executed_records += record->executed_shipped_records;
  report_.predicted_drops += record->predicted_dropped_inputs;
  report_.executed_drops += record->executed_dropped_records;
  if (!record->reconciled) {
    ++report_.mismatched_steps;
    if (report_.first_error.empty()) {
      // Name the pair that actually disagreed (bytes, then records,
      // then drops; an engine/plan inconsistency may leave all equal).
      std::string gap;
      if (outcome.shipped_bytes != record->predicted_moved_bytes) {
        gap = "executed " + std::to_string(outcome.shipped_bytes) +
              " bytes != predicted " +
              std::to_string(record->predicted_moved_bytes);
      } else if (outcome.shipped_records !=
                 record->predicted_moved_inputs) {
        gap = "shipped " + std::to_string(outcome.shipped_records) +
              " records != predicted " +
              std::to_string(record->predicted_moved_inputs);
      } else if (outcome.dropped_records !=
                 record->predicted_dropped_inputs) {
        gap = "dropped " + std::to_string(outcome.dropped_records) +
              " copies != predicted " +
              std::to_string(record->predicted_dropped_inputs);
      } else {
        gap = "plan execution failed";
      }
      report_.first_error =
          "step " + std::to_string(record->step) + " (" +
          KindName(record->kind) + "): " + gap +
          (outcome.error.empty() ? "" : " (" + outcome.error + ")");
    }
  }
  if (!record->placement_ok) {
    ++report_.placement_failures;
    if (report_.first_error.empty()) {
      report_.first_error = "step " + std::to_string(record->step) +
                            " placement: " + placement_error;
    }
  }
}

bool ClusterSimulator::ReplayTrace(const online::UpdateTrace& trace) {
  std::vector<std::optional<InputId>> live_of_trace;
  online::TraceIdTranslator translator(&live_of_trace);
  for (const Update& raw : trace.updates) {
    Update update = raw;
    if (!translator.Translate(&update)) {
      StepRecord record;
      record.step = ++steps_seen_;
      record.kind = update.kind;
      record.skipped = true;
      // Nothing ran: the step reconciles and the placement is
      // whatever the previous step verified.
      record.reconciled = true;
      record.placement_ok = true;
      ++report_.skipped;
      report_.steps.push_back(record);
      continue;
    }
    const StepRecord record = Step(update);
    if (update.kind == UpdateKind::kAddInput) {
      translator.RecordAdd(record.applied
                               ? std::optional<InputId>(
                                     assigner_.next_id() - 1)
                               : std::nullopt);
    }
  }
  // Trailing partial batch window: one final policy decision, its
  // churn executed and reconciled like any step (mirrors the CLI
  // replay driver's final checkpoint).
  if (config_.batch > 1 && assigner_.pending_decision_updates() > 0) {
    plan_.clear();
    const UpdateResult decision = assigner_.PolicyCheckpoint();
    StepRecord record;
    record.step = ++steps_seen_;
    record.checkpoint = true;
    record.applied = true;
    record.replanned = decision.replanned;
    ExecuteAndReconcile(decision.churn, &record);
    report_.steps.push_back(record);
  }
  return report_.ok();
}

std::vector<std::string> ClusterSimulator::CsvHeader() {
  return {"step",           "kind",
          "applied",        "replanned",
          "predicted_bytes", "executed_bytes",
          "predicted_moves", "executed_records",
          "predicted_drops", "executed_drops",
          "reducers",       "max_load",
          "reconciled",     "placement_ok"};
}

std::vector<std::string> ClusterSimulator::CsvRow(const StepRecord& r) {
  return {std::to_string(r.step),
          r.checkpoint ? "checkpoint" : KindName(r.kind),
          r.skipped ? "skipped" : (r.applied ? "1" : "0"),
          r.replanned ? "1" : "0",
          std::to_string(r.predicted_moved_bytes),
          std::to_string(r.executed_shipped_bytes),
          std::to_string(r.predicted_moved_inputs),
          std::to_string(r.executed_shipped_records),
          std::to_string(r.predicted_dropped_inputs),
          std::to_string(r.executed_dropped_records),
          std::to_string(r.live_reducers),
          std::to_string(r.max_reducer_load),
          r.reconciled ? "1" : "0",
          r.placement_ok ? "1" : "0"};
}

}  // namespace msp::sim
