#include "sim/cluster.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/schema.h"
#include "mapreduce/engine.h"
#include "mapreduce/job.h"
#include "mapreduce/schema_partitioner.h"
#include "mapreduce/types.h"
#include "util/thread_pool.h"

namespace msp::sim {

namespace {

using online::LiveState;
using online::ReshuffleOp;
using online::ReshufflePlan;

// Deterministic payload fill: the content is irrelevant (only sizes
// are weighed), but distinct inputs get distinct bytes so accidental
// record mixups cannot cancel out in the byte totals.
char FillChar(InputId id) { return static_cast<char>('a' + id % 23); }

// Swallows reducer groups; re-shuffle jobs only measure the shuffle.
class SinkReducer : public mr::GroupReducer {
 public:
  void Reduce(mr::ReducerIndex, const mr::KeyValueList&,
              mr::KeyValueList*) const override {}
};

// Emits every unordered pair of keys co-located in a reducer group,
// packed into one 64-bit key (the pair-coverage witness stream).
class PairWitnessReducer : public mr::GroupReducer {
 public:
  void Reduce(mr::ReducerIndex, const mr::KeyValueList& group,
              mr::KeyValueList* out) const override {
    for (std::size_t i = 0; i < group.size(); ++i) {
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        const uint64_t a = std::min(group[i].key, group[j].key);
        const uint64_t b = std::max(group[i].key, group[j].key);
        out->push_back({(a << 32) | b, ""});
      }
    }
  }
};

}  // namespace

SimulatedCluster::~SimulatedCluster() = default;

ThreadPool* SimulatedCluster::WorkerPool() const {
  if (!config_.persistent_pool) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(
        std::max<std::size_t>(config_.workers, 1));
  }
  return pool_.get();
}

SimulatedCluster::Outcome SimulatedCluster::Execute(
    const ReshufflePlan& plan) {
  Outcome outcome;
  const auto fail = [&outcome](std::string why) {
    outcome.ok = false;
    if (outcome.error.empty()) outcome.error = std::move(why);
    return outcome;
  };

  // Apply the plan to the placement in order (within one update a copy
  // may ship to a reducer a later op folds away, so order matters),
  // collecting the ships for the engine job.
  std::vector<ReshuffleOp> ships;
  for (const ReshuffleOp& op : plan) {
    if (op.kind == ReshuffleOp::Kind::kShip) {
      if (op.bytes > kMaxSimPayloadBytes) {
        return fail("copy of input " + std::to_string(op.input) +
                    " too large to materialize (" +
                    std::to_string(op.bytes) + " bytes)");
      }
      if (!hosted_[op.reducer_uid].insert(op.input).second) {
        return fail("plan ships input " + std::to_string(op.input) +
                    " to reducer uid " + std::to_string(op.reducer_uid) +
                    " which already hosts it");
      }
      ships.push_back(op);
      continue;
    }
    const auto it = hosted_.find(op.reducer_uid);
    if (it == hosted_.end() || it->second.erase(op.input) == 0) {
      return fail("plan drops input " + std::to_string(op.input) +
                  " from reducer uid " + std::to_string(op.reducer_uid) +
                  " which does not host it");
    }
    if (it->second.empty()) hosted_.erase(it);
    ++outcome.dropped_records;
  }
  if (ships.empty()) return outcome;

  // One engine job executes the ships: the i-th ship is the i-th
  // record, routed to its destination reducer (uids densified in
  // first-seen order). The engine's shuffle accounting — not the plan
  // — produces the executed byte/record counts.
  std::unordered_map<uint64_t, mr::ReducerIndex> dense_of_uid;
  std::vector<uint64_t> ship_bytes_of_dense;
  std::vector<uint64_t> ship_records_of_dense;
  mr::KeyValueList records;
  std::vector<std::vector<mr::ReducerIndex>> routes;
  records.reserve(ships.size());
  routes.reserve(ships.size());
  for (const ReshuffleOp& op : ships) {
    auto [it, fresh] = dense_of_uid.try_emplace(
        op.reducer_uid, static_cast<mr::ReducerIndex>(dense_of_uid.size()));
    if (fresh) {
      ship_bytes_of_dense.push_back(0);
      ship_records_of_dense.push_back(0);
    }
    ship_bytes_of_dense[it->second] += op.bytes;
    ++ship_records_of_dense[it->second];
    records.push_back({records.size(),
                       std::string(static_cast<std::size_t>(op.bytes),
                                   FillChar(op.input))});
    routes.push_back({it->second});
  }

  mr::EngineConfig engine_config;
  engine_config.num_workers = config_.workers;
  engine_config.pool = WorkerPool();
  const mr::MapReduceEngine engine(engine_config);
  const mr::RoutingPartitioner partitioner(
      std::move(routes), static_cast<mr::ReducerIndex>(dense_of_uid.size()));
  mr::KeyValueList output;
  const mr::JobMetrics metrics = engine.Run(
      records, mr::IdentityMapper(), partitioner, SinkReducer(), &output);

  mr::PublishJobMetrics(metrics, config_.metrics, "reshuffle");
  outcome.shipped_records = metrics.shuffle_records;
  outcome.shipped_bytes = metrics.shuffle_bytes;
  // The engine's per-reducer ledger must agree with the plan's per-uid
  // totals — a routing or accounting bug shows up here, not as a
  // silently wrong total.
  for (const auto& [uid, dense] : dense_of_uid) {
    if (metrics.reducer_bytes[dense] != ship_bytes_of_dense[dense] ||
        metrics.reducer_records[dense] != ship_records_of_dense[dense]) {
      return fail("engine delivered " +
                  std::to_string(metrics.reducer_bytes[dense]) + " bytes / " +
                  std::to_string(metrics.reducer_records[dense]) +
                  " records to reducer uid " + std::to_string(uid) +
                  ", plan shipped " +
                  std::to_string(ship_bytes_of_dense[dense]) + " / " +
                  std::to_string(ship_records_of_dense[dense]));
    }
  }
  return outcome;
}

bool SimulatedCluster::MatchesLiveState(const LiveState& state,
                                        std::string* error) const {
  const auto fail = [error](std::string why) {
    if (error != nullptr) *error = std::move(why);
    return false;
  };
  if (hosted_.size() != state.reducers.size()) {
    return fail("cluster hosts " + std::to_string(hosted_.size()) +
                " reducers, live schema has " +
                std::to_string(state.reducers.size()));
  }
  for (std::size_t r = 0; r < state.reducers.size(); ++r) {
    const uint64_t uid = state.reducer_uids[r];
    const auto it = hosted_.find(uid);
    if (it == hosted_.end()) {
      return fail("live reducer uid " + std::to_string(uid) +
                  " missing from the cluster");
    }
    const Reducer& members = state.reducers[r];
    if (!std::equal(members.begin(), members.end(), it->second.begin(),
                    it->second.end())) {
      return fail("member mismatch at reducer uid " + std::to_string(uid));
    }
    uint64_t load = 0;
    for (InputId id : members) load += state.sizes[id];
    if (load != state.loads[r]) {
      return fail("load mismatch at reducer uid " + std::to_string(uid) +
                  ": cluster " + std::to_string(load) + ", assigner " +
                  std::to_string(state.loads[r]));
    }
  }
  return true;
}

bool SimulatedCluster::OracleCheck(const LiveState& state,
                                   std::string* error) const {
  const auto fail = [error](std::string why) {
    if (error != nullptr) *error = std::move(why);
    return false;
  };
  // Dense projection of the alive instance, in ascending id order (the
  // same canonical order the assigner's own oracle uses).
  std::vector<InputId> ordered(state.alive_ids.begin(),
                               state.alive_ids.end());
  std::sort(ordered.begin(), ordered.end());
  if (ordered.size() < 2) return true;
  std::vector<InputId> dense_of(state.sizes.size(), ~InputId{0});
  for (InputId d = 0; d < ordered.size(); ++d) dense_of[ordered[d]] = d;

  MappingSchema dense_schema;
  dense_schema.reducers.reserve(state.reducers.size());
  for (const Reducer& reducer : state.reducers) {
    Reducer mapped;
    mapped.reserve(reducer.size());
    for (InputId id : reducer) {
      if (dense_of[id] == ~InputId{0}) {
        return fail("live schema references a dead input");
      }
      mapped.push_back(dense_of[id]);
    }
    dense_schema.reducers.push_back(std::move(mapped));
  }

  mr::KeyValueList records;
  records.reserve(ordered.size());
  for (InputId d = 0; d < ordered.size(); ++d) {
    const InputSize w = state.sizes[ordered[d]];
    if (w > kMaxSimPayloadBytes) {
      return fail("input too large to materialize for the oracle job");
    }
    records.push_back(
        {d, std::string(static_cast<std::size_t>(w), FillChar(ordered[d]))});
  }

  mr::EngineConfig engine_config;
  engine_config.num_workers = config_.workers;
  engine_config.reducer_capacity = state.capacity;
  engine_config.pool = WorkerPool();
  const mr::MapReduceEngine engine(engine_config);
  const mr::SchemaPartitioner partitioner(dense_schema, ordered.size());
  mr::KeyValueList witnesses;
  const mr::JobMetrics metrics =
      engine.Run(records, mr::IdentityMapper(), partitioner,
                 PairWitnessReducer(), &witnesses);
  mr::PublishJobMetrics(metrics, config_.metrics, "oracle");

  if (metrics.capacity_violated) {
    return fail("engine partition overflows capacity " +
                std::to_string(state.capacity));
  }
  for (std::size_t r = 0; r < dense_schema.reducers.size(); ++r) {
    if (metrics.reducer_bytes[r] != state.loads[r]) {
      return fail("engine delivered " +
                  std::to_string(metrics.reducer_bytes[r]) +
                  " bytes to reducer " + std::to_string(r) +
                  ", assigner load is " + std::to_string(state.loads[r]));
    }
  }
  std::unordered_set<uint64_t> covered;
  covered.reserve(witnesses.size());
  for (const mr::KeyValue& kv : witnesses) covered.insert(kv.key);
  for (uint64_t a = 0; a < ordered.size(); ++a) {
    for (uint64_t b = a + 1; b < ordered.size(); ++b) {
      if (state.x2y &&
          state.sides[ordered[a]] == state.sides[ordered[b]]) {
        continue;
      }
      if (covered.count((a << 32) | b) == 0) {
        return fail("pair (" + std::to_string(ordered[a]) + ", " +
                    std::to_string(ordered[b]) +
                    ") meets at no engine reducer");
      }
    }
  }
  return true;
}

}  // namespace msp::sim
