// Sharded LRU cache of solved plans, keyed by canonical instance.
//
// The cache is the planner's warm path: a hit returns a previously
// solved canonical schema without running any construction algorithm.
// Shards are independent mutex-protected LRU lists selected by the key
// hash, so concurrent planners contend only when they race on the same
// shard. Counters are updated under the shard lock, which makes the
// aggregate statistics exact (hits + misses == lookups, insertions -
// evictions - replacements == entries) even under heavy concurrency.

#ifndef MSP_PLANNER_PLAN_CACHE_H_
#define MSP_PLANNER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/schema.h"
#include "planner/canonical.h"

namespace msp::planner {

/// A solved plan for one canonical instance. Immutable once cached;
/// shared_ptr lets readers keep it alive past an eviction.
struct CachedPlan {
  MappingSchema schema;  // over canonical ids
  std::string algorithm;
  uint64_t num_reducers = 0;
  uint64_t communication = 0;  // in canonical (scaled) size units
};

/// Aggregate cache counters. Exact: every field is mutated under a
/// shard lock and the snapshot sums over all shards.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;    // new keys added
  uint64_t replacements = 0;  // existing keys overwritten
  uint64_t evictions = 0;     // entries dropped by the LRU policy
  uint64_t entries = 0;       // currently cached
};

/// Thread-safe sharded LRU map: PlanKey -> CachedPlan.
class PlanCache {
 public:
  /// `num_shards` independent shards (at least 1) of
  /// `capacity_per_shard` entries each (at least 1).
  PlanCache(std::size_t num_shards, std::size_t capacity_per_shard);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan and refreshes its recency, or nullptr on
  /// a miss.
  std::shared_ptr<const CachedPlan> Lookup(const PlanKey& key);

  /// Inserts (or replaces) the plan for `key`, evicting the shard's
  /// least-recently-used entry when the shard is full.
  void Insert(const PlanKey& key, std::shared_ptr<const CachedPlan> plan);

  /// Exact aggregate counters.
  PlanCacheStats stats() const;

  /// Drops every entry (counters other than `entries` are preserved).
  void Clear();

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t capacity_per_shard() const { return capacity_per_shard_; }

 private:
  struct Entry {
    PlanKey key;
    std::shared_ptr<const CachedPlan> plan;
  };
  struct KeyHash {
    std::size_t operator()(const PlanKey& key) const {
      return static_cast<std::size_t>(HashPlanKey(key));
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<PlanKey, std::list<Entry>::iterator, KeyHash> index;
    PlanCacheStats counters;  // `entries` tracked as index.size()
  };

  Shard& ShardFor(uint64_t hash) {
    return *shards_[hash % shards_.size()];
  }

  std::size_t capacity_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace msp::planner

#endif  // MSP_PLANNER_PLAN_CACHE_H_
