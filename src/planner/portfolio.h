// Algorithm portfolio: run every applicable construction, keep the best.
//
// The paper's constructions win on different instance shapes (equal
// grouping on uniform sizes, pairing/k-groups when inputs are small
// relative to q, big/small under heavy skew), and picking the best one
// per instance is exactly the NP-hard tension the paper analyzes. The
// portfolio sidesteps the prediction problem: it runs all applicable
// solvers — concurrently when given a ThreadPool — follows each with
// the MergeReducers post-pass, and scores candidates by reducer count,
// then communication cost. The `auto` dispatcher is always one of the
// candidates, so the portfolio winner is never worse than
// SolveA2AAuto / SolveX2YAuto.

#ifndef MSP_PLANNER_PORTFOLIO_H_
#define MSP_PLANNER_PORTFOLIO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/a2a.h"
#include "core/improve.h"
#include "core/instance.h"
#include "core/schema.h"
#include "core/x2y.h"
#include "util/thread_pool.h"

namespace msp::planner {

/// The MergeReducers post-pass is quadratic in the reducer count, and
/// the A3 ablation (bench_a3_improve) shows it recovers almost nothing
/// for the bin-packing constructions; above this many reducers the
/// portfolio skips it to keep large plans fast.
inline constexpr uint64_t kMergePassMaxReducers = 4096;

/// Applies the MergeReducers post-pass unless the schema is above
/// kMergePassMaxReducers. Returns the number of reducers merged away.
/// Every consumer of the cap (portfolio, budget fallback, benchmarks)
/// goes through this helper so the policy cannot diverge.
template <typename Instance>
uint64_t ApplyMergePass(const Instance& in, MappingSchema* schema) {
  if (schema->num_reducers() > kMergePassMaxReducers) return 0;
  const ImproveStats merged = MergeReducers(in, schema);
  return merged.reducers_before - merged.reducers_after;
}

/// One row of the per-algorithm scoreboard.
struct AlgorithmScore {
  std::string name;
  /// False when the algorithm's precondition failed (no schema).
  bool produced = false;
  uint64_t reducers = 0;
  uint64_t communication = 0;
  /// Reducers removed by the MergeReducers post-pass.
  uint64_t merged_away = 0;
  uint64_t micros = 0;  // wall time of solve + merge
};

/// Portfolio outcome: the winning (merged) schema plus the scoreboard.
struct PortfolioResult {
  std::optional<MappingSchema> best;  // nullopt: infeasible instance
  std::string best_algorithm;
  std::vector<AlgorithmScore> scoreboard;

  /// Index into `scoreboard` of the winner (scoreboard.size() when
  /// nothing produced a schema).
  std::size_t best_index = 0;
};

/// Runs the A2A candidates (auto, equal-grouping, binpack-pairing,
/// binpack-triples, binpack-4groups, big-small), each followed by
/// MergeReducers. Tasks run on `pool` when non-null (the call still
/// blocks until its own tasks finish; other users' pool tasks are not
/// waited on), inline otherwise. The winner minimizes (reducers,
/// communication), ties broken by candidate order — deterministic with
/// and without a pool.
PortfolioResult RunPortfolio(const A2AInstance& in, ThreadPool* pool,
                             const A2AOptions& options = {});

/// X2Y candidates: auto, binpack-cross, binpack-cross-tuned, big-small.
PortfolioResult RunPortfolio(const X2YInstance& in, ThreadPool* pool,
                             const X2YOptions& options = {});

}  // namespace msp::planner

#endif  // MSP_PLANNER_PORTFOLIO_H_
