#include "planner/service.h"

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <ostream>
#include <thread>
#include <utility>

#include "core/a2a.h"
#include "core/x2y.h"
#include "obs/alloc.h"
#include "obs/span.h"
#include "util/table.h"
#include "util/timer.h"

namespace msp::planner {

namespace {

std::size_t ResolveThreads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 4;
}

std::optional<MappingSchema> SolveAuto(const A2AInstance& in) {
  return SolveA2AAuto(in);
}
std::optional<MappingSchema> SolveAuto(const X2YInstance& in) {
  return SolveX2YAuto(in);
}

constexpr bool IsA2A(const A2AInstance*) { return true; }
constexpr bool IsA2A(const X2YInstance*) { return false; }

std::size_t NumInputs(const A2AInstance& in) { return in.num_inputs(); }
std::size_t NumInputs(const X2YInstance& in) {
  return in.num_x() + in.num_y();
}

}  // namespace

PlannerService::PlannerService(const PlannerConfig& config)
    : config_(config),
      pool_(ResolveThreads(config.num_threads)),
      cache_(config.cache_shards, config.cache_capacity_per_shard) {
  if (obs::Registry* reg = config_.metrics) {
    plan_latency_ = reg->histogram("planner.plan_latency_us");
    pub_.plans = reg->counter("planner.plans_total");
    pub_.cache_hits = reg->counter("planner.cache_hits_total");
    pub_.cache_misses = reg->counter("planner.cache_misses_total");
    pub_.cache_evictions = reg->counter("planner.cache_evictions_total");
    pub_.cache_entries = reg->gauge("planner.cache_entries");
    pub_.portfolio_runs = reg->counter("planner.portfolio_runs_total");
    pub_.auto_runs = reg->counter("planner.auto_runs_total");
    pub_.infeasible = reg->counter("planner.infeasible_total");
    pub_.alloc_bytes = reg->counter("planner.alloc_bytes_total");
    pub_.allocs = reg->counter("planner.allocs_total");
  }
}

template <typename Instance>
PlanResult PlannerService::PlanImpl(const Instance& instance,
                                    const PlanOptions& opts,
                                    ThreadPool* pool) {
  obs::Span span("planner.plan");
  // Charges the planning thread's allocations (canonicalization, cache
  // rewrite, portfolio orchestration; pool workers self-charge).
  obs::AllocScope alloc_scope(pub_.alloc_bytes, pub_.allocs);
  Stopwatch watch;
  PlanResult result;
  bool used_portfolio = false;

  const auto canonical = Canonicalize(instance);
  const PlanKey key = MakeKey(canonical.instance);

  if (auto cached = cache_.Lookup(key)) {
    // Warm path: no solving, just rewrite the canonical schema back to
    // the original ids.
    result.cache_hit = true;
    result.algorithm = cached->algorithm;
    result.schema = Decanonicalize(canonical.original_ids, cached->schema);
  } else {
    std::optional<MappingSchema> canonical_schema;
    const bool portfolio =
        opts.use_portfolio && (opts.budget_ms <= 0.0 ||
                               opts.budget_ms >= config_.portfolio_min_budget_ms);
    if (portfolio) {
      used_portfolio = true;
      PortfolioResult run = RunPortfolio(canonical.instance, pool);
      result.scoreboard = std::move(run.scoreboard);
      result.algorithm = run.best_algorithm;
      canonical_schema = std::move(run.best);
    } else {
      canonical_schema = SolveAuto(canonical.instance);
      if (canonical_schema.has_value()) {
        ApplyMergePass(canonical.instance, &*canonical_schema);
        result.algorithm = "auto";
      }
    }
    if (canonical_schema.has_value()) {
      auto plan = std::make_shared<CachedPlan>();
      const SchemaStats canonical_stats =
          SchemaStats::Compute(canonical.instance, *canonical_schema);
      plan->algorithm = result.algorithm;
      plan->num_reducers = canonical_stats.num_reducers;
      plan->communication = canonical_stats.communication_cost;
      plan->schema = *canonical_schema;
      cache_.Insert(key, std::move(plan));
      result.schema =
          Decanonicalize(canonical.original_ids, *canonical_schema);
    }
  }

  if (result.schema.has_value()) {
    result.stats = SchemaStats::Compute(instance, *result.schema);
  }
  result.plan_micros = watch.ElapsedMicros();
  RecordPlan(result, IsA2A(&instance), used_portfolio);
  if (span.active()) {
    span.Arg("inputs", static_cast<uint64_t>(NumInputs(instance)));
    span.Arg("cache_hit", result.cache_hit);
    span.Arg("algorithm", result.algorithm);
  }
  return result;
}

template <typename Instance>
std::vector<PlanResult> PlannerService::PlanManyImpl(
    const std::vector<Instance>& instances, const PlanOptions& opts) {
  std::vector<PlanResult> results(instances.size());
  if (instances.empty()) return results;
  // One pool task per request; each solves inline (no nested portfolio
  // submissions, so pool workers never block on each other). A per-call
  // latch rather than ThreadPool::Wait() keeps concurrent batches
  // independent.
  std::mutex mu;
  std::condition_variable done;
  std::size_t remaining = instances.size();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    pool_.Submit([&, i] {
      results[i] = PlanImpl(instances[i], opts, /*pool=*/nullptr);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining == 0; });
  return results;
}

PlanResult PlannerService::Plan(const A2AInstance& instance,
                                const PlanOptions& opts) {
  return PlanImpl(instance, opts, &pool_);
}

PlanResult PlannerService::Plan(const X2YInstance& instance,
                                const PlanOptions& opts) {
  return PlanImpl(instance, opts, &pool_);
}

std::vector<PlanResult> PlannerService::PlanMany(
    const std::vector<A2AInstance>& instances, const PlanOptions& opts) {
  return PlanManyImpl(instances, opts);
}

std::vector<PlanResult> PlannerService::PlanMany(
    const std::vector<X2YInstance>& instances, const PlanOptions& opts) {
  return PlanManyImpl(instances, opts);
}

void PlannerService::RecordPlan(const PlanResult& result, bool is_a2a,
                                bool used_portfolio) {
  plan_latency_->Record(result.plan_micros);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.plans;
    if (is_a2a) {
      ++counters_.a2a_plans;
    } else {
      ++counters_.x2y_plans;
    }
    if (!result.schema.has_value()) ++counters_.infeasible;
    if (!result.cache_hit && result.schema.has_value()) {
      if (used_portfolio) {
        ++counters_.portfolio_runs;
      } else {
        ++counters_.auto_runs;
      }
    }
  }
  if (pub_.plans == nullptr) return;
  pub_.plans->Inc();
  if (result.cache_hit) {
    pub_.cache_hits->Inc();
  } else {
    pub_.cache_misses->Inc();
  }
  if (!result.schema.has_value()) pub_.infeasible->Inc();
  if (!result.cache_hit && result.schema.has_value()) {
    if (used_portfolio) {
      pub_.portfolio_runs->Inc();
      // A portfolio win is attributed to the algorithm that produced
      // the deployed schema.
      config_.metrics
          ->counter("planner.portfolio_wins_total",
                    {{"algorithm", result.algorithm}})
          ->Inc();
    } else {
      pub_.auto_runs->Inc();
    }
  }
  // Cache occupancy and evictions accrue inside the cache shards;
  // refresh the published view from their counters (cheap relative to
  // the plan itself).
  const PlanCacheStats cache = cache_.stats();
  pub_.cache_entries->Set(static_cast<int64_t>(cache.entries));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (cache.evictions > published_evictions_) {
      pub_.cache_evictions->Inc(cache.evictions - published_evictions_);
      published_evictions_ = cache.evictions;
    }
  }
}

PlannerStats PlannerService::stats() const {
  PlannerStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snapshot = counters_;
  }
  const PlanCacheStats cache = cache_.stats();
  snapshot.cache_hits = cache.hits;
  snapshot.cache_misses = cache.misses;
  snapshot.cache_insertions = cache.insertions;
  snapshot.cache_replacements = cache.replacements;
  snapshot.cache_evictions = cache.evictions;
  snapshot.cache_entries = cache.entries;
  return snapshot;
}

void PlannerService::PrintStats(std::ostream& out) const {
  const PlannerStats s = stats();
  const obs::HistogramSnapshot lat = plan_latency_->snapshot();

  TablePrinter table("planner stats");
  table.SetHeader({"counter", "value"});
  table.AddRow({"plans", TablePrinter::Fmt(s.plans)});
  table.AddRow({"a2a / x2y", TablePrinter::Fmt(s.a2a_plans) + " / " +
                                 TablePrinter::Fmt(s.x2y_plans)});
  table.AddRow({"cache hits", TablePrinter::Fmt(s.cache_hits)});
  table.AddRow({"cache misses", TablePrinter::Fmt(s.cache_misses)});
  const uint64_t lookups = s.cache_hits + s.cache_misses;
  table.AddRow({"hit rate",
                lookups == 0
                    ? "-"
                    : TablePrinter::Fmt(static_cast<double>(s.cache_hits) /
                                        static_cast<double>(lookups))});
  table.AddRow({"cache entries", TablePrinter::Fmt(s.cache_entries)});
  table.AddRow({"cache evictions", TablePrinter::Fmt(s.cache_evictions)});
  table.AddRow({"portfolio runs", TablePrinter::Fmt(s.portfolio_runs)});
  table.AddRow({"auto runs", TablePrinter::Fmt(s.auto_runs)});
  table.AddRow({"infeasible", TablePrinter::Fmt(s.infeasible)});
  if (lat.count() > 0) {
    table.AddRow({"plan us (mean)", TablePrinter::Fmt(lat.mean())});
    table.AddRow({"plan us (p50)", TablePrinter::Fmt(lat.Percentile(50))});
    table.AddRow({"plan us (p95)", TablePrinter::Fmt(lat.Percentile(95))});
    table.AddRow(
        {"plan us (max)", TablePrinter::Fmt(static_cast<double>(lat.max()))});
  }
  table.Print(out);
}

}  // namespace msp::planner
