// Instance canonicalization for the planning service.
//
// Two instances that differ only by a permutation of their inputs or by
// a common scale factor of all sizes *and* the capacity have exactly the
// same mapping schemas (up to renaming the inputs), so they should share
// one plan-cache entry. Canonicalization maps an instance to the
// representative of its equivalence class:
//
//  * sizes sorted descending (ties broken by original id, so the
//    canonical order is deterministic);
//  * sizes and capacity divided by g = gcd(w_1, .., w_m, q). Including
//    q in the gcd keeps the scaling exact — every capacity threshold
//    the solvers compute (q/2, q/k, residuals q - w) divides through,
//    so solving the canonical instance is isomorphic to solving the
//    original;
//  * for X2Y, the two sides are additionally ordered so that the
//    lexicographically larger canonical size vector is the X side
//    (the problem is symmetric in X and Y).
//
// Each canonicalization records the id permutation it applied, and
// Decanonicalize rewrites a schema for the canonical instance back into
// a schema for the original instance.

#ifndef MSP_PLANNER_CANONICAL_H_
#define MSP_PLANNER_CANONICAL_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/schema.h"

namespace msp::planner {

/// Cache key of a canonical instance. Two instances are plan-equivalent
/// iff their keys compare equal.
struct PlanKey {
  enum Kind : uint8_t { kA2A = 0, kX2Y = 1 };

  Kind kind = kA2A;
  /// Number of X-side inputs (X2Y only; 0 for A2A). The canonical
  /// `sizes` vector lists the X side first, then the Y side.
  uint32_t num_x = 0;
  InputSize capacity = 0;
  std::vector<InputSize> sizes;

  bool operator==(const PlanKey&) const = default;
};

/// 64-bit FNV-1a over the key's fields. Deterministic across runs.
uint64_t HashPlanKey(const PlanKey& key);

/// Canonical form of an A2A instance plus the map back to original ids.
struct CanonicalA2A {
  A2AInstance instance;
  /// original_ids[c] = original id of canonical input c.
  std::vector<InputId> original_ids;
  /// The gcd divided out of sizes and capacity.
  InputSize scale = 1;
};

/// Canonical form of an X2Y instance. `original_ids` maps canonical
/// *global* ids (canonical X first, then canonical Y) to original
/// global ids; when `swapped`, the original Y side became canonical X.
struct CanonicalX2Y {
  X2YInstance instance;
  std::vector<InputId> original_ids;
  InputSize scale = 1;
  bool swapped = false;
};

CanonicalA2A Canonicalize(const A2AInstance& in);
CanonicalX2Y Canonicalize(const X2YInstance& in);

/// Cache key of a canonical instance (pass `canonical.instance`).
PlanKey MakeKey(const A2AInstance& canonical);
PlanKey MakeKey(const X2YInstance& canonical);

/// Rewrites a schema over canonical ids into one over original ids
/// (reducers keep their structure; members are remapped and re-sorted).
MappingSchema Decanonicalize(const std::vector<InputId>& original_ids,
                             const MappingSchema& canonical_schema);

}  // namespace msp::planner

#endif  // MSP_PLANNER_CANONICAL_H_
