// PlannerService — thread-safe planning facade over src/core.
//
// The service answers "which mapping schema, for this size vector and
// q" fast and repeatedly: requests are canonicalized (canonical.h) so
// permuted / uniformly-scaled instances share one plan, looked up in a
// sharded LRU plan cache (plan_cache.h), and solved on a miss by the
// concurrent algorithm portfolio (portfolio.h) — or by the cheaper
// SolveA2AAuto / SolveX2YAuto dispatcher when the caller's time budget
// is too tight for the portfolio. Cache hits do no solving at all: the
// cached canonical schema is rewritten back to the request's original
// input ids and returned.
//
//   PlannerService planner;
//   auto in = A2AInstance::Create({8, 6, 4, 2}, 12).value();
//   PlanResult r = planner.Plan(in);           // cold: runs portfolio
//   PlanResult r2 = planner.Plan(in);          // warm: cache hit
//   planner.PrintStats(std::cerr);
//
// All public methods are safe to call from any number of threads.

#ifndef MSP_PLANNER_SERVICE_H_
#define MSP_PLANNER_SERVICE_H_

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/schema.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "planner/plan_cache.h"
#include "planner/portfolio.h"
#include "util/thread_pool.h"

namespace msp::planner {

/// Construction-time configuration of a PlannerService.
struct PlannerConfig {
  /// Worker threads for portfolio runs and PlanMany batches
  /// (0 = hardware concurrency).
  std::size_t num_threads = 0;
  /// Number of independent plan-cache shards.
  std::size_t cache_shards = 8;
  /// LRU capacity of each shard (total capacity = shards * this).
  std::size_t cache_capacity_per_shard = 256;
  /// Plan() falls back from the portfolio to the auto dispatcher when
  /// the request's budget_ms is positive and below this threshold.
  double portfolio_min_budget_ms = 1.0;
  /// Optional metrics sink: when set, the service publishes
  /// planner.* counters and the plan-latency histogram into it.
  /// Latency percentiles are always available via latency() either
  /// way (the service owns a histogram when no registry is attached).
  obs::Registry* metrics = nullptr;
};

/// Per-request knobs.
struct PlanOptions {
  /// When false, skip the portfolio and use the auto dispatcher.
  bool use_portfolio = true;
  /// Soft time budget in milliseconds; 0 means unlimited. A tight
  /// budget (< PlannerConfig::portfolio_min_budget_ms) selects the
  /// auto dispatcher instead of the portfolio on a cache miss.
  double budget_ms = 0.0;
};

/// Outcome of one Plan() call. The schema (when present) is expressed
/// over the *original* instance's input ids and passes
/// ValidateA2A/ValidateX2Y for it.
struct PlanResult {
  std::optional<MappingSchema> schema;  // nullopt: infeasible instance
  bool cache_hit = false;
  std::string algorithm;  // winning algorithm ("" when infeasible)
  SchemaStats stats;      // computed against the original instance
  /// Per-algorithm scoreboard; empty on cache hits and auto fallbacks.
  std::vector<AlgorithmScore> scoreboard;
  uint64_t plan_micros = 0;
};

/// Snapshot of the service counters. Exact under concurrency: every
/// counter is mutated under a lock.
struct PlannerStats {
  uint64_t plans = 0;
  uint64_t a2a_plans = 0;
  uint64_t x2y_plans = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_insertions = 0;
  uint64_t cache_replacements = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_entries = 0;
  uint64_t portfolio_runs = 0;
  uint64_t auto_runs = 0;  // budget fallbacks + use_portfolio=false
  uint64_t infeasible = 0;
};

/// Thread-safe planning service; see file comment for the data flow.
class PlannerService {
 public:
  explicit PlannerService(const PlannerConfig& config = {});

  PlannerService(const PlannerService&) = delete;
  PlannerService& operator=(const PlannerService&) = delete;

  /// Plans one instance. Portfolio tasks of a cache miss run on the
  /// service's thread pool.
  PlanResult Plan(const A2AInstance& instance, const PlanOptions& opts = {});
  PlanResult Plan(const X2YInstance& instance, const PlanOptions& opts = {});

  /// Plans a batch, one pool task per instance (each request solved
  /// inline in its worker; results in input order).
  std::vector<PlanResult> PlanMany(const std::vector<A2AInstance>& instances,
                                   const PlanOptions& opts = {});
  std::vector<PlanResult> PlanMany(const std::vector<X2YInstance>& instances,
                                   const PlanOptions& opts = {});

  /// Exact counter snapshot.
  PlannerStats stats() const;

  /// Renders the counters and a latency summary (exact-count
  /// percentiles from the log-bucket histogram) as an aligned table.
  void PrintStats(std::ostream& out) const;

  /// Snapshot of the plan-latency histogram (all plans since
  /// construction — no ring cap).
  obs::HistogramSnapshot latency() const { return plan_latency_->snapshot(); }

  void ClearCache() { cache_.Clear(); }
  const PlannerConfig& config() const { return config_; }

 private:
  template <typename Instance>
  PlanResult PlanImpl(const Instance& instance, const PlanOptions& opts,
                      ThreadPool* pool);
  template <typename Instance>
  std::vector<PlanResult> PlanManyImpl(const std::vector<Instance>& instances,
                                       const PlanOptions& opts);
  void RecordPlan(const PlanResult& result, bool is_a2a, bool used_portfolio);

  PlannerConfig config_;
  ThreadPool pool_;
  PlanCache cache_;

  mutable std::mutex stats_mu_;
  PlannerStats counters_;  // cache_* filled from cache_.stats()

  // Plan wall times; points at the registry's histogram when a metrics
  // sink is attached, else at own_latency_.
  obs::Histogram own_latency_;
  obs::Histogram* plan_latency_ = &own_latency_;
  // Registry handles, resolved once at construction (null without a
  // sink; the record path is then a pointer test).
  struct Instruments {
    obs::Counter* plans = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* cache_evictions = nullptr;
    obs::Gauge* cache_entries = nullptr;
    obs::Counter* portfolio_runs = nullptr;
    obs::Counter* auto_runs = nullptr;
    obs::Counter* infeasible = nullptr;
    obs::Counter* alloc_bytes = nullptr;  // planner.alloc_bytes_total
    obs::Counter* allocs = nullptr;       // planner.allocs_total
  };
  Instruments pub_;
  uint64_t published_evictions_ = 0;  // under stats_mu_
};

}  // namespace msp::planner

#endif  // MSP_PLANNER_SERVICE_H_
