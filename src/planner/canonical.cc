#include "planner/canonical.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace msp::planner {

namespace {

// gcd of every size and the capacity. Always >= 1 (capacity > 0).
InputSize CommonScale(const std::vector<InputSize>& sizes,
                      InputSize capacity) {
  InputSize g = capacity;
  for (InputSize w : sizes) {
    g = std::gcd(g, w);
    if (g == 1) break;
  }
  return g;
}

// Indices of `sizes` ordered by (size descending, index ascending).
std::vector<InputId> DescendingOrder(const std::vector<InputSize>& sizes) {
  std::vector<InputId> order(sizes.size());
  std::iota(order.begin(), order.end(), InputId{0});
  std::stable_sort(order.begin(), order.end(), [&](InputId a, InputId b) {
    return sizes[a] > sizes[b];
  });
  return order;
}

std::vector<InputSize> Gather(const std::vector<InputSize>& sizes,
                              const std::vector<InputId>& order,
                              InputSize scale) {
  std::vector<InputSize> out;
  out.reserve(order.size());
  for (InputId id : order) out.push_back(sizes[id] / scale);
  return out;
}

void AppendHash(uint64_t value, uint64_t* hash) {
  // FNV-1a, one byte at a time.
  for (int shift = 0; shift < 64; shift += 8) {
    *hash ^= (value >> shift) & 0xff;
    *hash *= 1099511628211ull;
  }
}

}  // namespace

uint64_t HashPlanKey(const PlanKey& key) {
  uint64_t hash = 14695981039346656037ull;
  AppendHash(static_cast<uint64_t>(key.kind), &hash);
  AppendHash(key.num_x, &hash);
  AppendHash(key.capacity, &hash);
  AppendHash(key.sizes.size(), &hash);
  for (InputSize w : key.sizes) AppendHash(w, &hash);
  return hash;
}

CanonicalA2A Canonicalize(const A2AInstance& in) {
  const InputSize scale = CommonScale(in.sizes(), in.capacity());
  std::vector<InputId> order = DescendingOrder(in.sizes());
  auto canonical = A2AInstance::Create(Gather(in.sizes(), order, scale),
                                       in.capacity() / scale);
  // The original instance satisfies the Create invariants and exact
  // scaling preserves them (w/g <= q/g iff w <= q).
  MSP_CHECK(canonical.has_value());
  return CanonicalA2A{std::move(*canonical), std::move(order), scale};
}

CanonicalX2Y Canonicalize(const X2YInstance& in) {
  std::vector<InputSize> all = in.x_sizes();
  all.insert(all.end(), in.y_sizes().begin(), in.y_sizes().end());
  const InputSize scale = CommonScale(all, in.capacity());

  const std::vector<InputId> x_order = DescendingOrder(in.x_sizes());
  const std::vector<InputId> y_order = DescendingOrder(in.y_sizes());
  std::vector<InputSize> x_sorted = Gather(in.x_sizes(), x_order, scale);
  std::vector<InputSize> y_sorted = Gather(in.y_sizes(), y_order, scale);

  // The problem is symmetric in the sides; put the lexicographically
  // larger sorted size vector on the X side so mirrored instances
  // canonicalize identically.
  const bool swapped = x_sorted < y_sorted;
  if (swapped) x_sorted.swap(y_sorted);

  // Canonical global ids: canonical X occupies [0, cx), canonical Y
  // occupies [cx, cx + cy); map each back to the original global id.
  std::vector<InputId> original_ids;
  original_ids.reserve(in.num_inputs());
  const auto& first_order = swapped ? y_order : x_order;
  const auto& second_order = swapped ? x_order : y_order;
  const InputId first_base =
      swapped ? static_cast<InputId>(in.num_x()) : InputId{0};
  const InputId second_base =
      swapped ? InputId{0} : static_cast<InputId>(in.num_x());
  for (InputId id : first_order) original_ids.push_back(first_base + id);
  for (InputId id : second_order) original_ids.push_back(second_base + id);

  auto canonical = X2YInstance::Create(std::move(x_sorted),
                                       std::move(y_sorted),
                                       in.capacity() / scale);
  MSP_CHECK(canonical.has_value());
  return CanonicalX2Y{std::move(*canonical), std::move(original_ids), scale,
                      swapped};
}

PlanKey MakeKey(const A2AInstance& canonical) {
  PlanKey key;
  key.kind = PlanKey::kA2A;
  key.capacity = canonical.capacity();
  key.sizes = canonical.sizes();
  return key;
}

PlanKey MakeKey(const X2YInstance& canonical) {
  PlanKey key;
  key.kind = PlanKey::kX2Y;
  key.num_x = static_cast<uint32_t>(canonical.num_x());
  key.capacity = canonical.capacity();
  key.sizes = canonical.x_sizes();
  key.sizes.insert(key.sizes.end(), canonical.y_sizes().begin(),
                   canonical.y_sizes().end());
  return key;
}

MappingSchema Decanonicalize(const std::vector<InputId>& original_ids,
                             const MappingSchema& canonical_schema) {
  MappingSchema original;
  original.reducers.reserve(canonical_schema.reducers.size());
  for (const Reducer& reducer : canonical_schema.reducers) {
    Reducer rewritten;
    rewritten.reserve(reducer.size());
    for (InputId id : reducer) {
      MSP_CHECK_LT(id, original_ids.size());
      rewritten.push_back(original_ids[id]);
    }
    std::sort(rewritten.begin(), rewritten.end());
    original.AddReducer(std::move(rewritten));
  }
  return original;
}

}  // namespace msp::planner
