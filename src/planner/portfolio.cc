#include "planner/portfolio.h"

#include <condition_variable>
#include <functional>
#include <mutex>
#include <utility>

#include "util/timer.h"

namespace msp::planner {

namespace {

// One portfolio candidate: a named closure producing a schema.
template <typename Instance>
struct Candidate {
  std::string name;
  std::function<std::optional<MappingSchema>(const Instance&)> solve;
};

// Runs candidate `index`, applies the merge post-pass, and fills the
// matching scoreboard slot (each task touches only its own slot, so the
// tasks are data-race free without locking).
template <typename Instance>
void RunCandidate(const Instance& in, const Candidate<Instance>& candidate,
                  AlgorithmScore* score,
                  std::optional<MappingSchema>* schema) {
  Stopwatch watch;
  score->name = candidate.name;
  *schema = candidate.solve(in);
  if (schema->has_value()) {
    score->produced = true;
    score->merged_away = ApplyMergePass(in, &**schema);
    const SchemaStats stats = SchemaStats::Compute(in, **schema);
    score->reducers = stats.num_reducers;
    score->communication = stats.communication_cost;
  }
  score->micros = watch.ElapsedMicros();
}

// Runs all candidates (on `pool` when non-null) and picks the winner.
template <typename Instance>
PortfolioResult RunAll(const Instance& in,
                       const std::vector<Candidate<Instance>>& candidates,
                       ThreadPool* pool) {
  PortfolioResult result;
  result.scoreboard.resize(candidates.size());
  std::vector<std::optional<MappingSchema>> schemas(candidates.size());

  if (pool != nullptr && candidates.size() > 1) {
    // Per-run completion latch: ThreadPool::Wait() drains the whole
    // queue (including other planners' tasks), so each portfolio run
    // counts down only its own tasks.
    std::mutex mu;
    std::condition_variable done;
    std::size_t remaining = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      pool->Submit([&, i] {
        RunCandidate(in, candidates[i], &result.scoreboard[i], &schemas[i]);
        std::lock_guard<std::mutex> lock(mu);
        if (--remaining == 0) done.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    done.wait(lock, [&] { return remaining == 0; });
  } else {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      RunCandidate(in, candidates[i], &result.scoreboard[i], &schemas[i]);
    }
  }

  result.best_index = candidates.size();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const AlgorithmScore& score = result.scoreboard[i];
    if (!score.produced) continue;
    if (result.best_index == candidates.size()) {
      result.best_index = i;
      continue;
    }
    const AlgorithmScore& leader = result.scoreboard[result.best_index];
    if (score.reducers < leader.reducers ||
        (score.reducers == leader.reducers &&
         score.communication < leader.communication)) {
      result.best_index = i;
    }
  }
  if (result.best_index < candidates.size()) {
    result.best = std::move(schemas[result.best_index]);
    result.best_algorithm = result.scoreboard[result.best_index].name;
  }
  return result;
}

}  // namespace

PortfolioResult RunPortfolio(const A2AInstance& in, ThreadPool* pool,
                             const A2AOptions& options) {
  const std::vector<Candidate<A2AInstance>> candidates = {
      {"auto",
       [options](const A2AInstance& i) { return SolveA2AAuto(i, options); }},
      {"equal-grouping",
       [](const A2AInstance& i) { return SolveA2AEqualGrouping(i); }},
      {"binpack-pairing",
       [options](const A2AInstance& i) {
         return SolveA2ABinPackPairing(i, options);
       }},
      {"binpack-triples",
       [options](const A2AInstance& i) {
         return SolveA2ABinPackTriples(i, options);
       }},
      {"binpack-4groups",
       [options](const A2AInstance& i) {
         return SolveA2ABinPackKGroups(i, 4, options);
       }},
      {"big-small",
       [options](const A2AInstance& i) {
         return SolveA2ABigSmall(i, options);
       }},
  };
  return RunAll(in, candidates, pool);
}

PortfolioResult RunPortfolio(const X2YInstance& in, ThreadPool* pool,
                             const X2YOptions& options) {
  const std::vector<Candidate<X2YInstance>> candidates = {
      {"auto",
       [options](const X2YInstance& i) { return SolveX2YAuto(i, options); }},
      {"binpack-cross",
       [options](const X2YInstance& i) {
         return SolveX2YBinPackCross(i, options);
       }},
      {"binpack-cross-tuned",
       [options](const X2YInstance& i) {
         return SolveX2YBinPackCrossTuned(i, options);
       }},
      {"big-small",
       [options](const X2YInstance& i) {
         return SolveX2YBigSmall(i, options);
       }},
  };
  return RunAll(in, candidates, pool);
}

}  // namespace msp::planner
