#include "planner/plan_cache.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace msp::planner {

PlanCache::PlanCache(std::size_t num_shards, std::size_t capacity_per_shard)
    : capacity_per_shard_(std::max<std::size_t>(1, capacity_per_shard)) {
  num_shards = std::max<std::size_t>(1, num_shards);
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const PlanKey& key) {
  Shard& shard = ShardFor(HashPlanKey(key));
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.counters.misses;
    return nullptr;
  }
  ++shard.counters.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->plan;
}

void PlanCache::Insert(const PlanKey& key,
                       std::shared_ptr<const CachedPlan> plan) {
  MSP_CHECK(plan != nullptr);
  Shard& shard = ShardFor(HashPlanKey(key));
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->plan = std::move(plan);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.counters.replacements;
    return;
  }
  shard.lru.push_front(Entry{key, std::move(plan)});
  shard.index.emplace(key, shard.lru.begin());
  ++shard.counters.insertions;
  if (shard.index.size() > capacity_per_shard_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.counters.evictions;
  }
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->counters.hits;
    total.misses += shard->counters.misses;
    total.insertions += shard->counters.insertions;
    total.replacements += shard->counters.replacements;
    total.evictions += shard->counters.evictions;
    total.entries += shard->index.size();
  }
  return total;
}

void PlanCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace msp::planner
