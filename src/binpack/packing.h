// Bin-packing data model.
//
// The paper's mapping-schema algorithms (Afrati et al., EDBT 2015,
// Sec. "Different-Sized Inputs") reduce to bin packing: inputs are
// packed into bins of capacity q/2 (A2A) or a capacity split of q
// (X2Y), and reducers are formed from bin pairs. This library is a
// standalone, fully tested bin-packing implementation.

#ifndef MSP_BINPACK_PACKING_H_
#define MSP_BINPACK_PACKING_H_

#include <cstdint>
#include <string>
#include <vector>

namespace msp::bp {

/// Index of an item in the caller's size array.
using ItemIndex = uint32_t;

/// The result of packing items into capacity-bounded bins.
///
/// `bins[b]` lists the indices of the items placed in bin `b`. A
/// Packing produced by this library always satisfies: every item index
/// appears in exactly one bin, and every bin's load is <= capacity.
struct Packing {
  uint64_t capacity = 0;
  std::vector<std::vector<ItemIndex>> bins;

  std::size_t num_bins() const { return bins.size(); }

  /// Sum of `sizes[i]` over the items in bin `b`.
  uint64_t BinLoad(const std::vector<uint64_t>& sizes, std::size_t b) const;
};

/// Returns true when `packing` is a valid packing of all `sizes.size()`
/// items: disjoint cover of all indices, every bin within capacity.
/// On failure `error` (if non-null) receives a human-readable reason.
bool IsValidPacking(const std::vector<uint64_t>& sizes,
                    const Packing& packing, std::string* error);

}  // namespace msp::bp

#endif  // MSP_BINPACK_PACKING_H_
