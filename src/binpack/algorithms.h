// Classic online and offline bin-packing heuristics.
//
// All algorithms run in O(n log n): FirstFit uses a segment tree over
// bin residual capacities, BestFit/WorstFit use an ordered multiset.
// FirstFitDecreasing (the default throughout the mapping-schema
// algorithms) sorts by decreasing size and then runs FirstFit; its
// classic guarantee FFD(I) <= (11/9) OPT(I) + 6/9 carries into the
// schema-size bounds.

#ifndef MSP_BINPACK_ALGORITHMS_H_
#define MSP_BINPACK_ALGORITHMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "binpack/packing.h"

namespace msp::bp {

/// Which packing heuristic to run.
enum class Algorithm {
  kNextFit,             // keep one open bin
  kFirstFit,            // leftmost bin that fits
  kBestFit,             // tightest bin that fits
  kWorstFit,            // emptiest bin that fits
  kFirstFitDecreasing,  // sort desc, then first fit
  kBestFitDecreasing,   // sort desc, then best fit
};

/// All algorithms, in a stable order (for sweeps/ablations).
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kNextFit,          Algorithm::kFirstFit,
    Algorithm::kBestFit,          Algorithm::kWorstFit,
    Algorithm::kFirstFitDecreasing, Algorithm::kBestFitDecreasing,
};

/// Human-readable name ("FFD", "BF", ...).
std::string AlgorithmName(Algorithm algorithm);

/// Packs `sizes` into bins of `capacity` with the chosen heuristic.
/// Requires every size to satisfy 0 < size <= capacity (checked).
Packing Pack(const std::vector<uint64_t>& sizes, uint64_t capacity,
             Algorithm algorithm);

}  // namespace msp::bp

#endif  // MSP_BINPACK_ALGORITHMS_H_
