// Classic online and offline bin-packing heuristics.
//
// All algorithms run in O(n log n): FirstFit uses a segment tree over
// bin residual capacities, BestFit/WorstFit use an ordered multiset.
// FirstFitDecreasing (the default throughout the mapping-schema
// algorithms) sorts by decreasing size and then runs FirstFit; its
// classic guarantee FFD(I) <= (11/9) OPT(I) + 6/9 carries into the
// schema-size bounds.

#ifndef MSP_BINPACK_ALGORITHMS_H_
#define MSP_BINPACK_ALGORITHMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "binpack/packing.h"

namespace msp::bp {

/// Which packing heuristic to run.
enum class Algorithm {
  kNextFit,             // keep one open bin
  kFirstFit,            // leftmost bin that fits
  kBestFit,             // tightest bin that fits
  kWorstFit,            // emptiest bin that fits
  kFirstFitDecreasing,  // sort desc, then first fit
  kBestFitDecreasing,   // sort desc, then best fit
};

/// All algorithms, in a stable order (for sweeps/ablations).
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kNextFit,          Algorithm::kFirstFit,
    Algorithm::kBestFit,          Algorithm::kWorstFit,
    Algorithm::kFirstFitDecreasing, Algorithm::kBestFitDecreasing,
};

/// Human-readable name ("FFD", "BF", ...).
std::string AlgorithmName(Algorithm algorithm);

/// Descent mode of the first-fit segment tree (see FirstFitPacker).
/// Branchless replaces the data-dependent go-left/go-right branch of
/// the probe loop with arithmetic (node = 2*node + (left < w)), so
/// adversarial size streams cannot make the descent mispredict;
/// branching is the original loop, kept for benchmarks and
/// differential tests.
enum class FirstFitDescent : uint8_t { kBranchless = 0, kBranching = 1 };

/// Reusable first-fit placer: a lazy segment tree over bin residual
/// capacities answering "leftmost bin with residual >= w" in O(log n)
/// per item. Slots open lazily left-to-right, so the leftmost fitting
/// slot is exactly FirstFit's target bin. Reset re-arms for a fresh
/// packing while retaining the tree buffer — batches of packings pay
/// no per-pack allocation once the high-water mark is reached.
class FirstFitPacker {
 public:
  FirstFitPacker() = default;
  FirstFitPacker(std::size_t max_items, uint64_t capacity,
                 FirstFitDescent descent = FirstFitDescent::kBranchless) {
    Reset(max_items, capacity, descent);
  }

  /// Re-arms for a fresh packing of up to `max_items` items into bins
  /// of `capacity` (> 0, checked).
  void Reset(std::size_t max_items, uint64_t capacity,
             FirstFitDescent descent = FirstFitDescent::kBranchless);

  /// Places one item of size `w` (<= capacity, checked) into the
  /// leftmost bin with room and returns that bin's index.
  std::size_t Place(uint64_t w);

  /// Bins opened so far (the packing's bin count).
  std::size_t bins_used() const { return bins_used_; }
  uint64_t capacity() const { return capacity_; }

 private:
  std::size_t PlaceBranchless(uint64_t w);
  std::size_t PlaceBranching(uint64_t w);

  std::size_t n_ = 0;  // leaf count (power of two); 0 = not armed
  uint64_t capacity_ = 0;
  std::size_t bins_used_ = 0;
  FirstFitDescent descent_ = FirstFitDescent::kBranchless;
  std::vector<uint64_t> tree_;  // 1-indexed max-residual segment tree
};

/// Packs `sizes` into bins of `capacity` with the chosen heuristic.
/// Requires every size to satisfy 0 < size <= capacity (checked).
Packing Pack(const std::vector<uint64_t>& sizes, uint64_t capacity,
             Algorithm algorithm);

}  // namespace msp::bp

#endif  // MSP_BINPACK_ALGORITHMS_H_
