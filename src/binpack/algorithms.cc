#include "binpack/algorithms.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include "util/check.h"

namespace msp::bp {

namespace {

Packing PackNextFit(const std::vector<uint64_t>& sizes, uint64_t capacity,
                    const std::vector<ItemIndex>& order) {
  Packing packing;
  packing.capacity = capacity;
  uint64_t residual = 0;
  for (ItemIndex i : order) {
    if (packing.bins.empty() || sizes[i] > residual) {
      packing.bins.emplace_back();
      residual = capacity;
    }
    packing.bins.back().push_back(i);
    residual -= sizes[i];
  }
  return packing;
}

Packing PackFirstFit(const std::vector<uint64_t>& sizes, uint64_t capacity,
                     const std::vector<ItemIndex>& order) {
  Packing packing;
  packing.capacity = capacity;
  FirstFitPacker packer(std::max<std::size_t>(order.size(), 1), capacity);
  for (ItemIndex i : order) {
    const std::size_t bin = packer.Place(sizes[i]);
    if (bin >= packing.bins.size()) packing.bins.resize(bin + 1);
    packing.bins[bin].push_back(i);
  }
  return packing;
}

// BestFit (tightest bin) and WorstFit (emptiest bin) share a multiset
// of (residual, bin index).
Packing PackByResidual(const std::vector<uint64_t>& sizes, uint64_t capacity,
                       const std::vector<ItemIndex>& order, bool best_fit) {
  Packing packing;
  packing.capacity = capacity;
  std::multiset<std::pair<uint64_t, std::size_t>> residuals;
  for (ItemIndex i : order) {
    const uint64_t w = sizes[i];
    std::multiset<std::pair<uint64_t, std::size_t>>::iterator it;
    bool found = false;
    if (best_fit) {
      it = residuals.lower_bound({w, 0});
      found = it != residuals.end();
    } else {
      // Worst fit: the emptiest bin, if it fits.
      if (!residuals.empty()) {
        it = std::prev(residuals.end());
        found = it->first >= w;
      }
    }
    if (!found) {
      packing.bins.emplace_back();
      packing.bins.back().push_back(i);
      residuals.insert({capacity - w, packing.bins.size() - 1});
      continue;
    }
    const auto [residual, bin] = *it;
    residuals.erase(it);
    packing.bins[bin].push_back(i);
    residuals.insert({residual - w, bin});
  }
  return packing;
}

std::vector<ItemIndex> IdentityOrder(std::size_t n) {
  std::vector<ItemIndex> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::vector<ItemIndex> DecreasingOrder(const std::vector<uint64_t>& sizes) {
  std::vector<ItemIndex> order = IdentityOrder(sizes.size());
  std::stable_sort(order.begin(), order.end(), [&](ItemIndex a, ItemIndex b) {
    return sizes[a] > sizes[b];
  });
  return order;
}

}  // namespace

void FirstFitPacker::Reset(std::size_t max_items, uint64_t capacity,
                           FirstFitDescent descent) {
  MSP_CHECK_GT(capacity, 0u);
  n_ = 1;
  while (n_ < std::max<std::size_t>(max_items, 1)) n_ *= 2;
  capacity_ = capacity;
  bins_used_ = 0;
  descent_ = descent;
  // Every slot starts with full residual capacity; bins_used_ tracks
  // how many slots have actually been opened.
  tree_.assign(2 * n_, capacity);
}

std::size_t FirstFitPacker::Place(uint64_t w) {
  // Feasibility is checked once here, off the descent loop.
  MSP_CHECK_GT(n_, 0u) << "FirstFitPacker used before Reset";
  MSP_CHECK_LE(w, capacity_);
  MSP_CHECK_GE(tree_[1], w) << "first-fit tree out of slots";
  return descent_ == FirstFitDescent::kBranchless ? PlaceBranchless(w)
                                                  : PlaceBranching(w);
}

std::size_t FirstFitPacker::PlaceBranchless(uint64_t w) {
  // Probe: pure arithmetic descent — step right exactly when the left
  // child cannot fit `w`. The comparison feeds an index computation,
  // not a conditional jump, so adversarial size streams cannot make
  // the probe mispredict.
  std::size_t node = 1;
  while (node < n_) {
    node = 2 * node + static_cast<std::size_t>(tree_[2 * node] < w);
  }
  const std::size_t bin = node - n_;
  tree_[node] -= w;
  // Pull: unconditional bottom-up max refresh, no per-level early-out.
  for (node >>= 1; node != 0; node >>= 1) {
    tree_[node] = std::max(tree_[2 * node], tree_[2 * node + 1]);
  }
  bins_used_ = std::max(bins_used_, bin + 1);
  return bin;
}

std::size_t FirstFitPacker::PlaceBranching(uint64_t w) {
  // The original data-dependent descent, kept as the benchmark and
  // differential-test baseline for the branchless probe above.
  std::size_t node = 1;
  while (node < n_) {
    node *= 2;
    if (tree_[node] < w) ++node;  // go right
  }
  const std::size_t bin = node - n_;
  tree_[node] -= w;
  for (node /= 2; node >= 1; node /= 2) {
    tree_[node] = std::max(tree_[2 * node], tree_[2 * node + 1]);
    if (node == 1) break;
  }
  bins_used_ = std::max(bins_used_, bin + 1);
  return bin;
}

std::string AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kNextFit:
      return "NF";
    case Algorithm::kFirstFit:
      return "FF";
    case Algorithm::kBestFit:
      return "BF";
    case Algorithm::kWorstFit:
      return "WF";
    case Algorithm::kFirstFitDecreasing:
      return "FFD";
    case Algorithm::kBestFitDecreasing:
      return "BFD";
  }
  return "unknown";
}

Packing Pack(const std::vector<uint64_t>& sizes, uint64_t capacity,
             Algorithm algorithm) {
  MSP_CHECK_GT(capacity, 0u);
  for (uint64_t w : sizes) {
    MSP_CHECK_GT(w, 0u) << "zero-sized item";
    MSP_CHECK_LE(w, capacity) << "item larger than bin capacity";
  }
  switch (algorithm) {
    case Algorithm::kNextFit:
      return PackNextFit(sizes, capacity, IdentityOrder(sizes.size()));
    case Algorithm::kFirstFit:
      return PackFirstFit(sizes, capacity, IdentityOrder(sizes.size()));
    case Algorithm::kBestFit:
      return PackByResidual(sizes, capacity, IdentityOrder(sizes.size()),
                            /*best_fit=*/true);
    case Algorithm::kWorstFit:
      return PackByResidual(sizes, capacity, IdentityOrder(sizes.size()),
                            /*best_fit=*/false);
    case Algorithm::kFirstFitDecreasing:
      return PackFirstFit(sizes, capacity, DecreasingOrder(sizes));
    case Algorithm::kBestFitDecreasing:
      return PackByResidual(sizes, capacity, DecreasingOrder(sizes),
                            /*best_fit=*/true);
  }
  MSP_CHECK(false) << "unreachable";
  return Packing{};
}

}  // namespace msp::bp
