#include "binpack/packing.h"

#include <sstream>

namespace msp::bp {

uint64_t Packing::BinLoad(const std::vector<uint64_t>& sizes,
                          std::size_t b) const {
  uint64_t load = 0;
  for (ItemIndex i : bins[b]) load += sizes[i];
  return load;
}

bool IsValidPacking(const std::vector<uint64_t>& sizes,
                    const Packing& packing, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::vector<int> seen(sizes.size(), 0);
  for (std::size_t b = 0; b < packing.bins.size(); ++b) {
    uint64_t load = 0;
    if (packing.bins[b].empty()) return fail("empty bin present");
    for (ItemIndex i : packing.bins[b]) {
      if (i >= sizes.size()) {
        std::ostringstream os;
        os << "item index " << i << " out of range";
        return fail(os.str());
      }
      ++seen[i];
      load += sizes[i];
    }
    if (load > packing.capacity) {
      std::ostringstream os;
      os << "bin " << b << " overflows: load " << load << " > capacity "
         << packing.capacity;
      return fail(os.str());
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i] != 1) {
      std::ostringstream os;
      os << "item " << i << " packed " << seen[i] << " times";
      return fail(os.str());
    }
  }
  return true;
}

}  // namespace msp::bp
