#include "binpack/bounds.h"

#include <algorithm>

#include "util/check.h"
#include "util/math_util.h"

namespace msp::bp {

uint64_t LowerBoundL1(const std::vector<uint64_t>& sizes, uint64_t capacity) {
  MSP_CHECK_GT(capacity, 0u);
  Uint128 total = 0;
  for (uint64_t w : sizes) total += w;
  return CeilDiv128(total, capacity);
}

uint64_t LowerBoundL2(const std::vector<uint64_t>& sizes, uint64_t capacity) {
  MSP_CHECK_GT(capacity, 0u);
  if (sizes.empty()) return 0;
  std::vector<uint64_t> sorted = sizes;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();

  // prefix[i] = sum of the i smallest sizes.
  std::vector<Uint128> prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + sorted[i];
  auto range_sum = [&](std::size_t lo, std::size_t hi) -> Uint128 {
    // Sum of sorted[lo..hi) by index.
    return prefix[hi] - prefix[lo];
  };
  // First index with size > v (== count of sizes <= v).
  auto upper = [&](uint64_t v) -> std::size_t {
    return static_cast<std::size_t>(
        std::upper_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
  };
  // First index with size >= v.
  auto lower = [&](uint64_t v) -> std::size_t {
    return static_cast<std::size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
  };

  uint64_t best = LowerBoundL1(sizes, capacity);
  // Candidate thresholds: 0 and each distinct size <= capacity / 2.
  std::vector<uint64_t> thresholds = {0};
  for (uint64_t w : sorted) {
    if (w <= capacity / 2 && (thresholds.empty() || thresholds.back() != w)) {
      thresholds.push_back(w);
    }
  }
  for (uint64_t k : thresholds) {
    // J1: size > capacity - k.  J2: capacity/2 < size <= capacity - k.
    // J3: k <= size <= capacity/2.
    const std::size_t j1_begin = upper(capacity - k);
    const std::size_t half_end = upper(capacity / 2);
    const std::size_t j2_begin = half_end;
    const std::size_t j2_end = std::max(j1_begin, half_end);
    const std::size_t j3_begin = lower(k);
    const std::size_t j3_end = std::min(half_end, n);

    const uint64_t n1 = static_cast<uint64_t>(n - j1_begin);
    const uint64_t n2 = static_cast<uint64_t>(j2_end - j2_begin);
    const Uint128 sum2 = range_sum(j2_begin, j2_end);
    const Uint128 sum3 =
        j3_begin < j3_end ? range_sum(j3_begin, j3_end) : Uint128{0};

    const Uint128 slack_in_j2_bins = Uint128{n2} * capacity - sum2;
    uint64_t extra = 0;
    if (sum3 > slack_in_j2_bins) {
      extra = CeilDiv128(sum3 - slack_in_j2_bins, capacity);
    }
    best = std::max(best, n1 + n2 + extra);
  }
  return best;
}

}  // namespace msp::bp
