// Exact bin packing by branch and bound.
//
// Only practical for small instances (n up to ~24); used to certify
// heuristic quality in tests and the T2 optimality-gap experiment.

#ifndef MSP_BINPACK_EXACT_H_
#define MSP_BINPACK_EXACT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "binpack/packing.h"

namespace msp::bp {

/// Result of an exact search.
struct ExactResult {
  Packing packing;          // an optimal packing
  uint64_t nodes_explored;  // search effort
};

/// Finds a minimum-bin packing, exploring at most `max_nodes` branch
/// nodes. Returns nullopt if the node budget is exhausted before
/// optimality is proven. Items must satisfy 0 < size <= capacity.
std::optional<ExactResult> PackExact(const std::vector<uint64_t>& sizes,
                                     uint64_t capacity,
                                     uint64_t max_nodes = 50'000'000);

}  // namespace msp::bp

#endif  // MSP_BINPACK_EXACT_H_
