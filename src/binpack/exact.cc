#include "binpack/exact.h"

#include <algorithm>
#include <numeric>

#include "binpack/algorithms.h"
#include "binpack/bounds.h"
#include "util/check.h"
#include "util/math_util.h"

namespace msp::bp {

namespace {

// Depth-first branch and bound over items in decreasing size order.
// Symmetry breaking: an item may open at most one new bin, and among
// existing bins, bins with identical residual are tried only once.
class ExactSearch {
 public:
  ExactSearch(std::vector<uint64_t> sorted_sizes, uint64_t capacity,
              uint64_t max_nodes)
      : sizes_(std::move(sorted_sizes)),
        capacity_(capacity),
        max_nodes_(max_nodes) {
    suffix_sum_.resize(sizes_.size() + 1, 0);
    for (std::size_t i = sizes_.size(); i > 0; --i) {
      suffix_sum_[i - 1] = suffix_sum_[i] + sizes_[i - 1];
    }
  }

  // Returns true if search completed within the node budget.
  bool Run(uint64_t initial_upper_bound, uint64_t lower_bound) {
    best_bins_ = initial_upper_bound;
    lower_bound_ = lower_bound;
    assignment_.assign(sizes_.size(), 0);
    residuals_.clear();
    aborted_ = false;
    Dfs(0);
    return !aborted_;
  }

  uint64_t best_bins() const { return best_bins_; }
  const std::vector<uint32_t>& best_assignment() const {
    return best_assignment_;
  }
  uint64_t nodes() const { return nodes_; }

 private:
  void Dfs(std::size_t item) {
    if (aborted_) return;
    if (++nodes_ > max_nodes_) {
      aborted_ = true;
      return;
    }
    if (residuals_.size() >= best_bins_) return;  // can't improve
    if (item == sizes_.size()) {
      best_bins_ = residuals_.size();
      best_assignment_ = assignment_;
      return;
    }
    // Volume-based completion bound: remaining volume must fit in the
    // open residual space plus new bins.
    Uint128 open_space = 0;
    for (uint64_t r : residuals_) open_space += r;
    const Uint128 remaining = suffix_sum_[item];
    uint64_t completion = residuals_.size();
    if (remaining > open_space) {
      completion += CeilDiv128(remaining - open_space, capacity_);
    }
    if (completion >= best_bins_) return;

    const uint64_t w = sizes_[item];
    // Try existing bins, skipping duplicate residuals at this node.
    uint64_t last_residual_tried = ~uint64_t{0};
    for (std::size_t b = 0; b < residuals_.size(); ++b) {
      if (residuals_[b] < w) continue;
      if (residuals_[b] == last_residual_tried) continue;
      last_residual_tried = residuals_[b];
      residuals_[b] -= w;
      assignment_[item] = static_cast<uint32_t>(b);
      Dfs(item + 1);
      residuals_[b] += w;
      if (aborted_) return;
      if (best_bins_ == lower_bound_) return;  // proven optimal
    }
    // Try a new bin.
    residuals_.push_back(capacity_ - w);
    assignment_[item] = static_cast<uint32_t>(residuals_.size() - 1);
    Dfs(item + 1);
    residuals_.pop_back();
  }

  std::vector<uint64_t> sizes_;  // decreasing
  uint64_t capacity_;
  uint64_t max_nodes_;
  std::vector<Uint128> suffix_sum_;

  std::vector<uint64_t> residuals_;
  std::vector<uint32_t> assignment_;
  std::vector<uint32_t> best_assignment_;
  uint64_t best_bins_ = 0;
  uint64_t lower_bound_ = 0;
  uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

std::optional<ExactResult> PackExact(const std::vector<uint64_t>& sizes,
                                     uint64_t capacity, uint64_t max_nodes) {
  MSP_CHECK_GT(capacity, 0u);
  for (uint64_t w : sizes) {
    MSP_CHECK_GT(w, 0u);
    MSP_CHECK_LE(w, capacity);
  }
  if (sizes.empty()) {
    return ExactResult{Packing{capacity, {}}, 0};
  }

  // Order items by decreasing size, remembering original indices.
  std::vector<ItemIndex> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ItemIndex a, ItemIndex b) {
    return sizes[a] > sizes[b];
  });
  std::vector<uint64_t> sorted(sizes.size());
  for (std::size_t i = 0; i < order.size(); ++i) sorted[i] = sizes[order[i]];

  // Seed the upper bound with FFD.
  const Packing ffd = Pack(sizes, capacity, Algorithm::kFirstFitDecreasing);
  const uint64_t lb = LowerBoundL2(sizes, capacity);

  ExactSearch search(sorted, capacity, max_nodes);
  if (!search.Run(/*initial_upper_bound=*/ffd.num_bins(),
                  /*lower_bound=*/lb)) {
    return std::nullopt;
  }

  Packing packing;
  packing.capacity = capacity;
  if (search.best_assignment().empty() && ffd.num_bins() <= search.best_bins()) {
    // FFD was already optimal and the search never improved on it.
    packing = ffd;
  } else {
    packing.bins.resize(search.best_bins());
    const auto& assignment = search.best_assignment();
    for (std::size_t i = 0; i < assignment.size(); ++i) {
      packing.bins[assignment[i]].push_back(order[i]);
    }
  }
  return ExactResult{std::move(packing), search.nodes()};
}

}  // namespace msp::bp
