// Lower bounds on the optimal number of bins.
//
// L1 is the capacity (area) bound ceil(sum / c). L2 is Martello &
// Toth's bound, which partitions items around a threshold k and counts
// bins forced by large items. Both are used to certify near-optimality
// of the heuristics in tests and benchmarks.

#ifndef MSP_BINPACK_BOUNDS_H_
#define MSP_BINPACK_BOUNDS_H_

#include <cstdint>
#include <vector>

namespace msp::bp {

/// ceil(total size / capacity).
uint64_t LowerBoundL1(const std::vector<uint64_t>& sizes, uint64_t capacity);

/// Martello-Toth L2 bound: max over thresholds k of the number of
/// bins forced by items larger than capacity - k, corrected by the
/// volume of items of size in [k, capacity - k]. Always >= L1.
uint64_t LowerBoundL2(const std::vector<uint64_t>& sizes, uint64_t capacity);

}  // namespace msp::bp

#endif  // MSP_BINPACK_BOUNDS_H_
