#include "serving/service.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "util/check.h"
#include "util/table.h"

namespace msp::serving {

namespace {

// Stable across platforms and standard-library versions, unlike
// std::hash<std::string>: shard placement is part of the service's
// observable behavior (tests and snapshot-restore flows rely on it).
uint64_t Fnv1a(const std::string& key) {
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : key) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string FmtPercentile(const obs::HistogramSnapshot& latency, double p) {
  if (latency.count() == 0) return "-";
  return TablePrinter::Fmt(latency.Percentile(p), 1);
}

// The shared planner inherits the service's metrics sink unless the
// caller wired its own (or supplied a pre-built planner_service).
planner::PlannerConfig SharedPlannerConfig(const ServingConfig& config) {
  planner::PlannerConfig pc = config.planner;
  if (pc.metrics == nullptr) pc.metrics = config.metrics;
  return pc;
}

}  // namespace

ServingService::ServingService(const ServingConfig& config)
    : planner_(config.planner_service
                   ? config.planner_service
                   : std::make_shared<planner::PlannerService>(
                         SharedPlannerConfig(config))),
      metrics_(config.metrics),
      default_budget_(config.default_budget) {
  MSP_CHECK_GT(config.num_shards, 0u) << "ServingConfig.num_shards";
  shards_.reserve(config.num_shards);
  for (std::size_t i = 0; i < config.num_shards; ++i) {
    shards_.push_back(std::make_unique<ServingShard>(i, planner_, metrics_));
  }
}

std::size_t ServingService::ShardOf(const std::string& key) const {
  return static_cast<std::size_t>(Fnv1a(key) % shards_.size());
}

bool ServingService::AttachWal(const durability::WalOptions& options,
                               std::string* error) {
  FileSystem* fs = options.fs != nullptr ? options.fs
                                         : RealFileSystem::Default();
  if (options.recover) {
    // The manifest pins the shard count: recovering with a different
    // count would re-route keys to different shards and interleave
    // their changelogs nonsensically.
    std::size_t manifest_shards = 0;
    if (!durability::ReadManifest(fs, options.dir, &manifest_shards,
                                  error)) {
      return false;
    }
    if (manifest_shards != shards_.size()) {
      if (error != nullptr) {
        *error = options.dir + " was written by " +
                 std::to_string(manifest_shards) +
                 " shards; this service has " +
                 std::to_string(shards_.size());
      }
      return false;
    }
  } else if (!durability::WriteManifest(fs, options.dir, shards_.size(),
                                        error)) {
    return false;
  }
  for (const auto& shard : shards_) {
    durability::WalOptions shard_options = options;
    shard_options.dir = JoinPath(
        options.dir, "shard-" + std::to_string(shard->index()));
    if (shard_options.metrics == nullptr) shard_options.metrics = metrics_;
    if (!shard->AttachWal(shard_options, error)) {
      if (error != nullptr) {
        *error = "shard " + std::to_string(shard->index()) + ": " + *error;
      }
      return false;
    }
  }
  return true;
}

void ServingService::CreateInstance(
    const std::string& key, online::OnlineConfig config,
    bool translate_trace_ids, std::optional<online::BudgetConfig> budget) {
  shards_[ShardOf(key)]->CreateInstance(key, std::move(config),
                                        translate_trace_ids,
                                        budget.value_or(default_budget_));
}

void ServingService::Submit(const std::string& key,
                            const online::Update& update) {
  shards_[ShardOf(key)]->Enqueue(key, {update}, 0);
}

void ServingService::SubmitBatch(const std::string& key,
                                 std::vector<online::Update> updates,
                                 std::size_t batch_size) {
  shards_[ShardOf(key)]->Enqueue(key, std::move(updates), batch_size);
}

void ServingService::Inspect(const std::string& key,
                             ServingShard::InspectFn fn) {
  shards_[ShardOf(key)]->EnqueueInspect(key, std::move(fn));
}

void ServingService::CheckpointAll() {
  for (const auto& shard : shards_) shard->EnqueueCheckpointAll();
}

void ServingService::Flush() {
  for (const auto& shard : shards_) shard->Flush();
}

ServingStats ServingService::stats() const {
  ServingStats stats;
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.shards.push_back(shard->stats());
    const ShardStats& s = stats.shards.back();
    stats.total.instances += s.instances;
    stats.total.enqueued_tasks += s.enqueued_tasks;
    stats.total.processed_tasks += s.processed_tasks;
    stats.total.updates += s.updates;
    stats.total.rejected += s.rejected;
    stats.total.skipped += s.skipped;
    stats.total.repairs += s.repairs;
    stats.total.replans += s.replans;
    stats.total.budget_deferred_total += s.budget_deferred_total;
    stats.total.budget_pending += s.budget_pending;
    stats.total.churn += s.churn;
    stats.total.wal_records += s.wal_records;
    stats.total.wal_bytes += s.wal_bytes;
    stats.total.wal_fsyncs += s.wal_fsyncs;
    stats.total.wal_rotations += s.wal_rotations;
    stats.total.wal_epoch = std::max(stats.total.wal_epoch, s.wal_epoch);
    stats.total.recovered_instances += s.recovered_instances;
    stats.total.recovered_records += s.recovered_records;
    stats.total.recovered_torn_tail |= s.recovered_torn_tail;
    stats.total.latency.Merge(s.latency);
  }
  return stats;
}

void ServingService::PrintStats(std::ostream& out) const {
  const ServingStats stats = this->stats();

  TablePrinter shards("serving shards");
  shards.SetHeader({"shard", "instances", "updates", "rejected", "repairs",
                    "replans", "p50 us", "p99 us", "max us"});
  const auto row = [&shards](const std::string& name, const ShardStats& s) {
    const std::string max =
        s.latency.count() == 0
            ? "-"
            : TablePrinter::Fmt(static_cast<double>(s.latency.max()), 1);
    shards.AddRow({name, TablePrinter::Fmt(s.instances),
                   TablePrinter::Fmt(s.updates),
                   TablePrinter::Fmt(s.rejected),
                   TablePrinter::Fmt(s.repairs),
                   TablePrinter::Fmt(s.replans),
                   FmtPercentile(s.latency, 50.0),
                   FmtPercentile(s.latency, 99.0), max});
  };
  for (std::size_t i = 0; i < stats.shards.size(); ++i) {
    row("shard-" + std::to_string(i), stats.shards[i]);
  }
  row("total", stats.total);
  shards.Print(out);

  TablePrinter churn("serving churn (all shards)");
  churn.SetHeader({"metric", "value"});
  churn.AddRow(
      {"inputs moved", TablePrinter::Fmt(stats.total.churn.inputs_moved)});
  churn.AddRow(
      {"inputs dropped", TablePrinter::Fmt(stats.total.churn.inputs_dropped)});
  churn.AddRow(
      {"bytes moved", TablePrinter::Fmt(stats.total.churn.bytes_moved)});
  churn.AddRow({"reducers created",
                TablePrinter::Fmt(stats.total.churn.reducers_created)});
  churn.AddRow({"reducers destroyed",
                TablePrinter::Fmt(stats.total.churn.reducers_destroyed)});
  if (stats.total.skipped > 0) {
    churn.AddRow({"events skipped (bad id)",
                  TablePrinter::Fmt(stats.total.skipped)});
  }
  if (stats.total.budget_deferred_total > 0 ||
      stats.total.budget_pending > 0) {
    churn.AddRow({"events deferred (budget)",
                  TablePrinter::Fmt(stats.total.budget_deferred_total)});
    churn.AddRow({"still pending (budget)",
                  TablePrinter::Fmt(stats.total.budget_pending)});
  }
  churn.Print(out);

  if (stats.total.wal_records > 0 || stats.total.wal_epoch > 0) {
    TablePrinter wal("durability (per shard)");
    wal.SetHeader({"shard", "epoch", "wal records", "wal bytes", "fsyncs",
                   "rotations", "recovered", "replayed", "torn"});
    const auto wal_row = [&wal](const std::string& name,
                                const ShardStats& s) {
      wal.AddRow({name, TablePrinter::Fmt(s.wal_epoch),
                  TablePrinter::Fmt(s.wal_records),
                  TablePrinter::Fmt(s.wal_bytes),
                  TablePrinter::Fmt(s.wal_fsyncs),
                  TablePrinter::Fmt(s.wal_rotations),
                  TablePrinter::Fmt(s.recovered_instances),
                  TablePrinter::Fmt(s.recovered_records),
                  s.recovered_torn_tail ? "yes" : "no"});
    };
    for (std::size_t i = 0; i < stats.shards.size(); ++i) {
      wal_row("shard-" + std::to_string(i), stats.shards[i]);
    }
    wal_row("total", stats.total);
    wal.Print(out);
  }
}

void ServingService::ForEachInstance(
    const std::function<void(const std::string&,
                             const online::OnlineAssigner&)>& fn) const {
  for (const auto& shard : shards_) shard->ForEachInstance(fn);
}

bool ServingService::ValidateAll(std::string* error) const {
  bool ok = true;
  ForEachInstance([&](const std::string& key,
                      const online::OnlineAssigner& assigner) {
    if (!ok) return;
    std::string why;
    if (!assigner.ValidateNow(&why)) {
      ok = false;
      if (error != nullptr) *error = "instance '" + key + "': " + why;
    }
  });
  return ok;
}

}  // namespace msp::serving
