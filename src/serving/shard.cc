#include "serving/shard.h"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "obs/span.h"
#include "online/snapshot.h"
#include "util/check.h"
#include "util/timer.h"

namespace msp::serving {

ServingShard::ServingShard(std::size_t index,
                           std::shared_ptr<planner::PlannerService> planner,
                           obs::Registry* metrics)
    : index_(index), planner_(std::move(planner)), metrics_(metrics) {
  MSP_CHECK(planner_ != nullptr);
  if (metrics_ != nullptr) {
    const obs::Labels shard_label = {{"shard", std::to_string(index_)}};
    apply_latency_ =
        metrics_->histogram("serving.apply_latency_us", shard_label);
    mailbox_depth_ = metrics_->gauge("serving.mailbox_depth", shard_label);
    queue_dwell_ = metrics_->histogram("serving.queue_dwell_us", shard_label);
    tasks_processed_ = metrics_->counter("serving.tasks_processed_total");
    updates_skipped_ = metrics_->counter("serving.updates_skipped_total");
  }
  worker_ = std::thread([this] { WorkerLoop(); });
}

ServingShard::~ServingShard() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  worker_.join();
}

bool ServingShard::AttachWal(const durability::WalOptions& options,
                             std::string* error) {
  std::map<std::string, durability::StreamState> streams;
  durability::RecoveryStats recovery;
  auto wal = durability::ShardWal::Open(options, options.dir, planner_,
                                        &streams, &recovery, error);
  if (wal == nullptr) return false;
  std::unique_lock<std::mutex> lock(mu_);
  MSP_CHECK(queue_.empty() && !busy_ && wal_ == nullptr &&
            instances_.empty())
      << "AttachWal requires a fresh, quiescent shard";
  wal_ = std::move(wal);
  for (auto& [key, stream] : streams) {
    Instance instance;
    instance.assigner = std::move(stream.assigner);
    instance.translate = stream.config.translate;
    instance.live_of_trace = std::move(stream.live_of_trace);
    instance.event_seq = stream.event_seq;
    instances_[key] = std::move(instance);
  }
  stats_.instances += streams.size();
  stats_.recovered_instances = recovery.instances;
  stats_.recovered_records = recovery.records_replayed;
  stats_.recovered_torn_tail = recovery.torn_tail;
  SyncWalStats();
  return true;
}

void ServingShard::StampEnqueue(Task* task) {
  heartbeat_.queue_depth.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ == nullptr) return;
  task->enqueued_at_us = obs::MonotonicMicros();
  mailbox_depth_->Add(1);
}

void ServingShard::CreateInstance(std::string key,
                                  online::OnlineConfig config,
                                  bool translate_trace_ids,
                                  online::BudgetConfig budget) {
  MSP_CHECK(budget.bytes_per_window == 0 || translate_trace_ids)
      << "churn budgets submit trace-side ids and need translation";
  Task task;
  task.create = true;
  task.key = std::move(key);
  task.config = std::move(config);
  task.config.shared_planner = planner_;
  // Instances inherit the shard's metrics sink unless the caller wired
  // a different one into the instance config.
  if (task.config.metrics == nullptr) task.config.metrics = metrics_;
  task.translate = translate_trace_ids;
  task.budget = budget;
  StampEnqueue(&task);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.enqueued_tasks;
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ServingShard::Enqueue(std::string key,
                           std::vector<online::Update> updates,
                           std::size_t batch_size) {
  Task task;
  task.key = std::move(key);
  task.updates = std::move(updates);
  task.batch_size = batch_size;
  StampEnqueue(&task);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.enqueued_tasks;
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ServingShard::EnqueueCheckpointAll() {
  Task task;
  task.checkpoint_all = true;
  StampEnqueue(&task);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.enqueued_tasks;
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ServingShard::EnqueueInspect(std::string key, InspectFn fn) {
  MSP_CHECK(fn != nullptr);
  Task task;
  task.key = std::move(key);
  task.inspect = std::move(fn);
  StampEnqueue(&task);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.enqueued_tasks;
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ServingShard::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

ShardStats ServingShard::stats() const {
  ShardStats snapshot;
  {
    std::unique_lock<std::mutex> lock(mu_);
    snapshot = stats_;
  }
  // The histogram is lock-free; its snapshot may trail an in-flight
  // task by a few records, exactly like the counters above trail an
  // in-flight Process.
  snapshot.latency = apply_latency_->snapshot();
  return snapshot;
}

void ServingShard::ForEachInstance(
    const std::function<void(const std::string&,
                             const online::OnlineAssigner&)>& fn) const {
  std::unique_lock<std::mutex> lock(mu_);
  MSP_CHECK(queue_.empty() && !busy_)
      << "ForEachInstance requires a quiescent shard (call Flush first)";
  for (const auto& [key, instance] : instances_) {
    fn(key, instance.live());
  }
}

void ServingShard::ReconcileBudgeted(Instance* instance) {
  const online::OnlineTotals& now = instance->live().totals();
  const online::OnlineTotals& base = instance->pub_totals;
  const uint64_t wrapper_rejected = instance->budgeted->rejected_total();
  const uint64_t deferred_total = instance->budgeted->deferred_total();
  const uint64_t pending = instance->budgeted->deferred();
  // Translation failures bump only the wrapper's rejected counter; the
  // assigner's own books carry the infeasible ones. The difference is
  // what the unbudgeted path counts as "skipped".
  const uint64_t skipped_delta = (wrapper_rejected -
                                  instance->pub_wrapper_rejected) -
                                 (now.rejected - base.rejected);
  {
    std::unique_lock<std::mutex> lock(mu_);
    stats_.updates += now.updates - base.updates;
    stats_.rejected += now.rejected - base.rejected;
    stats_.skipped += skipped_delta;
    stats_.repairs += now.repairs - base.repairs;
    stats_.replans += now.replans - base.replans;
    stats_.churn.inputs_moved +=
        now.churn.inputs_moved - base.churn.inputs_moved;
    stats_.churn.inputs_dropped +=
        now.churn.inputs_dropped - base.churn.inputs_dropped;
    stats_.churn.bytes_moved += now.churn.bytes_moved - base.churn.bytes_moved;
    stats_.churn.reducers_created +=
        now.churn.reducers_created - base.churn.reducers_created;
    stats_.churn.reducers_destroyed +=
        now.churn.reducers_destroyed - base.churn.reducers_destroyed;
    stats_.budget_deferred_total +=
        deferred_total - instance->pub_deferred_total;
    stats_.budget_pending += pending;
    stats_.budget_pending -= instance->pub_pending;
  }
  instance->pub_totals = now;
  instance->pub_wrapper_rejected = wrapper_rejected;
  instance->pub_deferred_total = deferred_total;
  instance->pub_pending = pending;
}

void ServingShard::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return !queue_.empty() || shutting_down_; });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    heartbeat_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    heartbeat_.busy.store(true, std::memory_order_relaxed);
    heartbeat_.last_progress_us.store(obs::MonotonicMicros(),
                                      std::memory_order_relaxed);
    if (metrics_ != nullptr) {
      mailbox_depth_->Sub(1);
      const uint64_t now = obs::MonotonicMicros();
      queue_dwell_->Record(now > task.enqueued_at_us
                               ? now - task.enqueued_at_us
                               : 0);
    }
    Process(task);
    if (tasks_processed_ != nullptr) tasks_processed_->Inc();
    if (wal_ != nullptr) {
      // Log-before-ack: when the mailbox has drained, fsync the
      // changelog BEFORE clearing busy_ — a returned Flush() then
      // implies everything processed is durable. While more tasks are
      // queued the barrier is deferred, so their records share the
      // group commit.
      bool drained = false;
      {
        std::unique_lock<std::mutex> lock(mu_);
        drained = queue_.empty();
      }
      if (drained) {
        WalQuiesce();
      } else if (wal_->WantsRotation()) {
        WalRotate();
      }
    }
    heartbeat_.busy.store(false, std::memory_order_relaxed);
    heartbeat_.last_progress_us.store(obs::MonotonicMicros(),
                                      std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mu_);
      busy_ = false;
      ++stats_.processed_tasks;
      if (wal_ != nullptr) SyncWalStats();
    }
    idle_.notify_all();
  }
}

void ServingShard::WalAppend(const durability::LogRecord& record) {
  std::string error;
  MSP_CHECK(wal_->Append(record, &error))
      << "shard " << index_
      << " cannot continue: changelog append failed (" << error << ")";
}

void ServingShard::WalQuiesce() {
  std::string error;
  MSP_CHECK(wal_->Sync(&error))
      << "shard " << index_
      << " cannot continue: changelog fsync failed (" << error << ")";
  if (wal_->WantsRotation()) WalRotate();
}

void ServingShard::WalRotate() {
  std::vector<durability::ImageEntry> entries;
  entries.reserve(instances_.size());
  for (const auto& [key, instance] : instances_) {
    durability::ImageEntry entry;
    entry.key = key;
    entry.translate = instance.translate;
    online::ReplayCursor cursor;
    cursor.next_event = instance.event_seq;
    cursor.live_of_trace = instance.live_of_trace;
    entry.snapshot = online::SnapshotCodec::Serialize(
        instance.live(), cursor, wal_->epoch() + 1);
    entries.push_back(std::move(entry));
  }
  std::string error;
  MSP_CHECK(wal_->Rotate(entries, &error))
      << "shard " << index_ << " cannot continue: rotation failed ("
      << error << ")";
}

void ServingShard::SyncWalStats() {
  // Called with mu_ held.
  stats_.wal_records = wal_->total_records();
  stats_.wal_bytes = wal_->total_bytes();
  stats_.wal_fsyncs = wal_->total_fsyncs();
  stats_.wal_rotations = wal_->rotations();
  stats_.wal_epoch = wal_->epoch();
}

void ServingShard::Process(Task& task) {
  obs::Span span("serving.task");
  if (span.active() && !task.key.empty()) span.Arg("key", task.key);
  if (task.create) {
    Instance instance;
    if (task.budget.bytes_per_window > 0 && wal_ != nullptr) {
      // Durability wins: the changelog records events at apply time in
      // ack order, which a deferral queue would silently violate.
      MSP_LOG(Warning) << "shard " << index_ << ": churn budget for '"
                       << task.key
                       << "' ignored — the shard logs to a WAL";
      task.budget.bytes_per_window = 0;
    }
    if (task.budget.bytes_per_window > 0) {
      instance.budgeted = std::make_unique<online::BudgetedAssigner>(
          task.config, task.budget);
    } else {
      instance.assigner =
          std::make_unique<online::OnlineAssigner>(task.config);
    }
    instance.translate = task.translate;
    if (wal_ != nullptr) {
      // A re-created key keeps its record ordinal: replay then knows
      // the create supersedes the old instance, not the new one.
      const auto it = instances_.find(task.key);
      instance.event_seq =
          it != instances_.end() ? it->second.event_seq : 0;
      WalAppend(durability::LogRecord::Create(
          task.key, instance.event_seq,
          durability::StreamConfig::From(task.config, task.translate)));
    }
    std::unique_lock<std::mutex> lock(mu_);
    instances_[task.key] = std::move(instance);
    ++stats_.instances;
    return;
  }

  if (task.checkpoint_all) {
    uint64_t repairs = 0;
    uint64_t replans = 0;
    online::ChurnStats churn;
    for (auto& [key, instance] : instances_) {
      if (instance.budgeted != nullptr) {
        // End of stream: refresh the budget window by window while the
        // deferred queue makes progress (a head that fits in no whole
        // window stays queued and is reported as pending).
        while (instance.budgeted->deferred() > 0 &&
               instance.budgeted->CloseWindow() > 0) {
        }
        instance.budgeted->PolicyCheckpoint();
        ReconcileBudgeted(&instance);
        continue;
      }
      const online::UpdateResult decision =
          instance.assigner->PolicyCheckpoint();
      if (decision.applied) {
        churn += decision.churn;
        if (decision.replanned) {
          ++replans;
        } else {
          ++repairs;
        }
      }
      if (wal_ != nullptr) {
        WalAppend(
            durability::LogRecord::Checkpoint(key, instance.event_seq));
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    stats_.repairs += repairs;
    stats_.replans += replans;
    stats_.churn += churn;
    return;
  }

  if (task.inspect != nullptr) {
    InstanceProbe probe;
    const auto probe_it = instances_.find(task.key);
    if (probe_it != instances_.end()) {
      const Instance& instance = probe_it->second;
      const online::OnlineAssigner& live = instance.live();
      probe.found = true;
      probe.inputs = live.num_inputs();
      probe.reducers = live.live_state().reducers.size();
      probe.capacity = live.capacity();
      probe.applied = live.totals().updates;
      probe.rejected = live.totals().rejected;
      probe.deferred_pending =
          instance.budgeted != nullptr ? instance.budgeted->deferred() : 0;
    }
    task.inspect(probe);
    return;
  }

  const auto it = instances_.find(task.key);
  if (it == instances_.end()) {
    // Updates for a never-created key have nowhere to go; surface the
    // mistake in the stats instead of crashing the worker.
    if (updates_skipped_ != nullptr) {
      updates_skipped_->Inc(task.updates.size());
    }
    std::unique_lock<std::mutex> lock(mu_);
    stats_.skipped += task.updates.size();
    return;
  }
  Instance& instance = it->second;
  online::OnlineAssigner& assigner = instance.live();

  if (instance.budgeted != nullptr) {
    // Budgeted instances: the wrapper owns translation, projection,
    // and the deferral queue; shard counters reconcile from the
    // assigner's own books afterwards (the wrapper may drain deferred
    // events mid-loop at window rollovers).
    const std::size_t bwindow = task.batch_size == 0 ? 1 : task.batch_size;
    for (const online::Update& update : task.updates) {
      const uint64_t wedge_us =
          apply_delay_us_.load(std::memory_order_relaxed);
      if (wedge_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(wedge_us));
      }
      heartbeat_.last_ordinal.fetch_add(1, std::memory_order_relaxed);
      heartbeat_.last_progress_us.store(obs::MonotonicMicros(),
                                        std::memory_order_relaxed);
      Stopwatch watch;
      const online::SubmitOutcome outcome =
          instance.budgeted->Submit(update);
      if (outcome == online::SubmitOutcome::kApplied) {
        apply_latency_->RecordMicros(
            static_cast<double>(watch.ElapsedMicros()));
        if (assigner.pending_decision_updates() >= bwindow) {
          instance.budgeted->PolicyCheckpoint();
        }
      }
    }
    if (span.active()) span.Arg("updates", task.updates.size());
    ReconcileBudgeted(&instance);
    return;
  }

  // Local tallies, merged under the lock once at the end of the task.
  uint64_t applied = 0;
  uint64_t rejected = 0;
  uint64_t skipped = 0;
  uint64_t repairs = 0;
  uint64_t replans = 0;
  online::ChurnStats churn;

  // The window position is the assigner's own pending-update count, so
  // a stream split across several Enqueue calls checkpoints exactly
  // like one big task would: task framing is not observable.
  const std::size_t window = task.batch_size == 0 ? 1 : task.batch_size;
  const auto checkpoint = [&] {
    const online::UpdateResult decision = assigner.PolicyCheckpoint();
    if (decision.applied) {
      churn += decision.churn;
      if (decision.replanned) {
        ++replans;
      } else {
        ++repairs;
      }
    }
    if (wal_ != nullptr) {
      WalAppend(durability::LogRecord::Checkpoint(task.key,
                                                  instance.event_seq));
    }
  };

  online::TraceIdTranslator translator(&instance.live_of_trace);
  for (online::Update update : task.updates) {
    const uint64_t wedge_us =
        apply_delay_us_.load(std::memory_order_relaxed);
    if (wedge_us > 0) {
      // Test-only wedge: stall *between* heartbeats so the watchdog
      // sees a busy worker whose last_progress_us stops advancing.
      std::this_thread::sleep_for(std::chrono::microseconds(wedge_us));
    }
    heartbeat_.last_ordinal.fetch_add(1, std::memory_order_relaxed);
    heartbeat_.last_progress_us.store(obs::MonotonicMicros(),
                                      std::memory_order_relaxed);
    if (instance.translate && !translator.Translate(&update)) {
      ++skipped;
      if (wal_ != nullptr) {
        // Logged raw (translation failed); replay advances the ordinal
        // without applying, reproducing the skip.
        WalAppend(durability::LogRecord::Event(
            durability::RecordKind::kSkipped, task.key,
            ++instance.event_seq, update));
      }
      continue;
    }
    Stopwatch watch;
    const online::UpdateResult result = assigner.ApplyDeferred(update);
    const double us = static_cast<double>(watch.ElapsedMicros());
    if (instance.translate &&
        update.kind == online::UpdateKind::kAddInput) {
      translator.RecordAdd(result.applied ? result.new_id : std::nullopt);
    }
    if (wal_ != nullptr) {
      // Post-translation (live ids), post-outcome: replay re-applies
      // deterministically and must reproduce applied/rejected.
      WalAppend(durability::LogRecord::Event(
          result.applied ? durability::RecordKind::kApplied
                         : durability::RecordKind::kRejected,
          task.key, ++instance.event_seq, update));
    }
    if (result.applied) {
      ++applied;
      churn += result.churn;
      // Lock-free: the histogram is safe to record outside mu_.
      apply_latency_->RecordMicros(us);
      if (assigner.pending_decision_updates() >= window) checkpoint();
    } else {
      ++rejected;
    }
  }
  if (span.active()) span.Arg("updates", applied);
  if (updates_skipped_ != nullptr && skipped > 0) {
    updates_skipped_->Inc(skipped);
  }

  std::unique_lock<std::mutex> lock(mu_);
  stats_.updates += applied;
  stats_.rejected += rejected;
  stats_.skipped += skipped;
  stats_.repairs += repairs;
  stats_.replans += replans;
  stats_.churn += churn;
}

}  // namespace msp::serving
