// One shard of the serving layer: a worker thread with exclusive
// ownership of a set of OnlineAssigners.
//
// OnlineAssigner is deliberately not thread-safe — one assigner serves
// one instance's ordered update stream. A ServingShard scales that
// discipline: every instance routed to the shard is touched by exactly
// one thread (the shard's worker), so no per-assigner locking exists
// at all. Callers talk to the shard through a mailbox (mutex + condvar
// FIFO): CreateInstance and Enqueue append tasks, the worker drains
// them in order, and Flush blocks until the mailbox is empty and the
// worker idle. Per-key update order is therefore preserved end to end.
//
// The shard also owns the replay bookkeeping the CLI's trace format
// needs (trace ids number every `add` line, but the assigner only
// issues ids to applied adds) and per-update latency samples for the
// serving stats tables.

#ifndef MSP_SERVING_SHARD_H_
#define MSP_SERVING_SHARD_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "online/assigner.h"
#include "online/trace.h"
#include "planner/service.h"

namespace msp::serving {

/// Counter snapshot of one shard. Exact: counters are only mutated by
/// the worker under the shard mutex.
struct ShardStats {
  uint64_t instances = 0;
  uint64_t enqueued_tasks = 0;
  uint64_t processed_tasks = 0;
  uint64_t updates = 0;    // applied updates across all instances
  uint64_t rejected = 0;   // infeasible updates refused by assigners
  uint64_t skipped = 0;    // events targeting unknown/rejected trace ids
  uint64_t repairs = 0;    // policy decisions absorbed by local repair
  uint64_t replans = 0;    // policy escalations
  online::ChurnStats churn;
  /// Retained per-update *repair* latency samples in microseconds
  /// (ring-capped). Policy checks and replans are excluded, so the
  /// percentiles measure the LiveState hot path and stay comparable
  /// across batch sizes and policies.
  std::vector<double> latency_us;
};

/// See the file comment. All public methods are thread-safe; the
/// assigners themselves are worker-private.
class ServingShard {
 public:
  ServingShard(std::size_t index,
               std::shared_ptr<planner::PlannerService> planner,
               std::size_t max_latency_samples);

  ServingShard(const ServingShard&) = delete;
  ServingShard& operator=(const ServingShard&) = delete;

  /// Drains the mailbox, then joins the worker.
  ~ServingShard();

  /// Registers a new instance (queued like any update, so creation
  /// orders correctly against subsequent Enqueues of the same key).
  /// `config.shared_planner` is overwritten with the shard's planner.
  /// `translate_trace_ids` enables the update-trace id translation:
  /// remove/resize targets are mapped through the add history, and
  /// events referencing unknown or rejected adds are counted skipped.
  void CreateInstance(std::string key, online::OnlineConfig config,
                      bool translate_trace_ids);

  /// Appends a window of events for `key`. `batch_size` 0 or 1 applies
  /// them one policy decision per update; larger windows go through
  /// OnlineAssigner policy checkpoints every `batch_size` applied
  /// events. The window position is the assigner's own pending count,
  /// so splitting a stream across Enqueue calls never shifts policy
  /// timing — which also means a trailing partial window stays pending
  /// until more events arrive or EnqueueCheckpointAll runs.
  void Enqueue(std::string key, std::vector<online::Update> updates,
               std::size_t batch_size);

  /// Queues one policy decision for every instance with pending
  /// updates (end-of-stream flush, mirroring the final checkpoint of
  /// an unbatched replay).
  void EnqueueCheckpointAll();

  /// Blocks until every queued task has been processed.
  void Flush();

  ShardStats stats() const;

  /// Runs `fn` over every instance. Only meaningful while the shard is
  /// quiescent (after Flush, with no concurrent Enqueue): the mailbox
  /// mutex orders this read after the worker's last write.
  void ForEachInstance(
      const std::function<void(const std::string&,
                               const online::OnlineAssigner&)>& fn) const;

  std::size_t index() const { return index_; }

 private:
  struct Instance {
    std::unique_ptr<online::OnlineAssigner> assigner;
    bool translate = false;
    std::vector<std::optional<InputId>> live_of_trace;
  };

  struct Task {
    bool create = false;
    bool checkpoint_all = false;
    std::string key;
    online::OnlineConfig config;  // create only
    bool translate = false;       // create only
    std::vector<online::Update> updates;
    std::size_t batch_size = 0;
  };

  void WorkerLoop();
  void Process(Task& task);
  void RecordLatency(double us);

  const std::size_t index_;
  const std::size_t max_latency_samples_;
  std::shared_ptr<planner::PlannerService> planner_;

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<Task> queue_;
  bool busy_ = false;
  bool shutting_down_ = false;
  ShardStats stats_;             // guarded by mu_
  std::size_t latency_next_ = 0; // ring cursor once the cap is hit

  /// Worker-private: only the worker thread dereferences instances
  /// while tasks are in flight (ForEachInstance synchronizes on mu_
  /// and requires quiescence).
  std::map<std::string, Instance> instances_;

  std::thread worker_;
};

}  // namespace msp::serving

#endif  // MSP_SERVING_SHARD_H_
