// One shard of the serving layer: a worker thread with exclusive
// ownership of a set of OnlineAssigners.
//
// OnlineAssigner is deliberately not thread-safe — one assigner serves
// one instance's ordered update stream. A ServingShard scales that
// discipline: every instance routed to the shard is touched by exactly
// one thread (the shard's worker), so no per-assigner locking exists
// at all. Callers talk to the shard through a mailbox (mutex + condvar
// FIFO): CreateInstance and Enqueue append tasks, the worker drains
// them in order, and Flush blocks until the mailbox is empty and the
// worker idle. Per-key update order is therefore preserved end to end.
//
// The shard also owns the replay bookkeeping the CLI's trace format
// needs (trace ids number every `add` line, but the assigner only
// issues ids to applied adds) and per-update latency samples for the
// serving stats tables.

#ifndef MSP_SERVING_SHARD_H_
#define MSP_SERVING_SHARD_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "durability/wal.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "online/assigner.h"
#include "online/budget.h"
#include "online/trace.h"
#include "planner/service.h"

namespace msp::serving {

/// Counter snapshot of one shard. Exact: counters are only mutated by
/// the worker under the shard mutex.
struct ShardStats {
  uint64_t instances = 0;
  uint64_t enqueued_tasks = 0;
  uint64_t processed_tasks = 0;
  uint64_t updates = 0;    // applied updates across all instances
  uint64_t rejected = 0;   // infeasible updates refused by assigners
  uint64_t skipped = 0;    // events targeting unknown/rejected trace ids
  uint64_t repairs = 0;    // policy decisions absorbed by local repair
  uint64_t replans = 0;    // policy escalations
  /// Churn-budget counters (all zero without budgeted instances).
  uint64_t budget_deferred_total = 0;  // lifetime deferred outcomes
  uint64_t budget_pending = 0;         // events queued right now
  online::ChurnStats churn;
  /// Durability counters (all zero when the shard has no WAL).
  uint64_t wal_records = 0;    // changelog records appended (lifetime)
  uint64_t wal_bytes = 0;      // changelog bytes appended (lifetime)
  uint64_t wal_fsyncs = 0;     // fsyncs issued by the changelog writer
  uint64_t wal_rotations = 0;  // snapshot-boundary rotations served
  uint64_t wal_epoch = 0;      // current changelog epoch
  uint64_t recovered_instances = 0;  // instances rebuilt by AttachWal
  uint64_t recovered_records = 0;    // changelog records replayed
  bool recovered_torn_tail = false;  // replay stopped at a torn record
  /// Per-update *repair* latency in microseconds as a log-bucket
  /// histogram snapshot: every applied update since construction is
  /// counted (no ring cap). Policy checks and replans are excluded, so
  /// the percentiles measure the LiveState hot path and stay
  /// comparable across batch sizes and policies. Mergeable across
  /// shards via HistogramSnapshot::Merge.
  obs::HistogramSnapshot latency;
};

/// Worker-progress heartbeat, published with relaxed atomics by the
/// shard and read lock-free by the stall watchdog (obs/watchdog.h).
/// `last_progress_us` advances on every task boundary and every
/// processed update, so a wedged apply shows up as a growing gap even
/// while `busy` stays true.
struct ShardHeartbeat {
  std::atomic<uint64_t> last_progress_us{0};
  std::atomic<uint64_t> last_ordinal{0};  // events processed (lifetime)
  std::atomic<uint64_t> queue_depth{0};   // mailbox depth
  std::atomic<bool> busy{false};          // worker mid-task
};

/// See the file comment. All public methods are thread-safe; the
/// assigners themselves are worker-private.
class ServingShard {
 public:
  /// `metrics` may be null (no sink): latency histograms then live
  /// only in the shard. With a sink attached the shard publishes
  /// serving.* series labeled shard=<index> — apply latency, mailbox
  /// depth, queue dwell — and instances created on it inherit the sink.
  ServingShard(std::size_t index,
               std::shared_ptr<planner::PlannerService> planner,
               obs::Registry* metrics = nullptr);

  ServingShard(const ServingShard&) = delete;
  ServingShard& operator=(const ServingShard&) = delete;

  /// Drains the mailbox, then joins the worker.
  ~ServingShard();

  /// Attaches a per-shard write-ahead changelog (durability/wal.h):
  /// opens (or, per `options.recover`, crash-recovers) `options.dir`
  /// on the calling thread and installs every recovered instance.
  /// From then on the worker logs each processed event *before* its
  /// task is acknowledged (log-before-ack: the mailbox drain loop
  /// fsyncs the changelog before marking itself idle, so a returned
  /// Flush means everything processed is durable). Requires a
  /// quiescent shard with no instances yet — call right after
  /// construction, before any CreateInstance/Enqueue. Returns false
  /// with `*error` when the directory cannot be opened or recovery
  /// fails (stale pair, corrupt header, divergent replay).
  bool AttachWal(const durability::WalOptions& options,
                 std::string* error = nullptr);

  /// Registers a new instance (queued like any update, so creation
  /// orders correctly against subsequent Enqueues of the same key).
  /// `config.shared_planner` is overwritten with the shard's planner.
  /// `translate_trace_ids` enables the update-trace id translation:
  /// remove/resize targets are mapped through the add history, and
  /// events referencing unknown or rejected adds are counted skipped.
  /// `budget.bytes_per_window` > 0 wraps the instance's assigner in a
  /// BudgetedAssigner (budget.h): each window of submitted events gets
  /// a shipped-byte budget and over-budget events are deferred FIFO,
  /// drained at window rollovers and at EnqueueCheckpointAll. Budgets
  /// require translate_trace_ids (the wrapper submits trace-side ids;
  /// checked) and are ignored with a warning on a WAL-attached shard —
  /// durability logs at apply time, which a deferral queue would
  /// reorder out from under the ack discipline.
  void CreateInstance(std::string key, online::OnlineConfig config,
                      bool translate_trace_ids,
                      online::BudgetConfig budget = {});

  /// Appends a window of events for `key`. `batch_size` 0 or 1 applies
  /// them one policy decision per update; larger windows go through
  /// OnlineAssigner policy checkpoints every `batch_size` applied
  /// events. The window position is the assigner's own pending count,
  /// so splitting a stream across Enqueue calls never shifts policy
  /// timing — which also means a trailing partial window stays pending
  /// until more events arrive or EnqueueCheckpointAll runs.
  void Enqueue(std::string key, std::vector<online::Update> updates,
               std::size_t batch_size);

  /// Queues one policy decision for every instance with pending
  /// updates (end-of-stream flush, mirroring the final checkpoint of
  /// an unbatched replay). Budgeted instances drain their deferred
  /// queue first (window by window, while progress is possible).
  void EnqueueCheckpointAll();

  /// Data-only snapshot of one instance, filled by the worker for an
  /// Inspect callback.
  struct InstanceProbe {
    bool found = false;
    uint64_t inputs = 0;
    uint64_t reducers = 0;
    uint64_t capacity = 0;
    uint64_t applied = 0;           // lifetime applied updates
    uint64_t rejected = 0;          // lifetime rejected updates
    uint64_t deferred_pending = 0;  // budget queue occupancy
  };
  using InspectFn = std::function<void(const InstanceProbe&)>;

  /// Queues `fn` behind every task enqueued before it; the worker
  /// fills an InstanceProbe for `key` (found=false when unknown) and
  /// invokes the callback *on the worker thread*. Keep callbacks short
  /// and never re-enter the shard from one — the mailbox is stalled
  /// while it runs. This is how the RPC front door answers Query
  /// requests ordered after earlier submits of the same key.
  void EnqueueInspect(std::string key, InspectFn fn);

  /// Blocks until every queued task has been processed.
  void Flush();

  ShardStats stats() const;

  /// Runs `fn` over every instance. Only meaningful while the shard is
  /// quiescent (after Flush, with no concurrent Enqueue): the mailbox
  /// mutex orders this read after the worker's last write.
  void ForEachInstance(
      const std::function<void(const std::string&,
                               const online::OnlineAssigner&)>& fn) const;

  std::size_t index() const { return index_; }

  /// Lock-free progress probe for the watchdog; valid for the shard's
  /// lifetime.
  const ShardHeartbeat& heartbeat() const { return heartbeat_; }

  /// Makes the worker sleep `us` microseconds before applying every
  /// update — a deterministic wedge for watchdog tests. 0 disables.
  void InjectApplyDelayForTest(uint64_t us) {
    apply_delay_us_.store(us, std::memory_order_relaxed);
  }

 private:
  struct Instance {
    /// Exactly one of these owns the live assigner: `budgeted` when a
    /// churn budget was configured, else `assigner`.
    std::unique_ptr<online::OnlineAssigner> assigner;
    std::unique_ptr<online::BudgetedAssigner> budgeted;
    bool translate = false;
    std::vector<std::optional<InputId>> live_of_trace;
    /// Per-key changelog record ordinal (see durability/changelog.h).
    /// Advanced by every processed event, logged with each record, and
    /// restored from the snapshot cursor on recovery.
    uint64_t event_seq = 0;
    /// Budgeted instances account through OnlineTotals deltas (the
    /// wrapper applies deferred events at times the task loop cannot
    /// see); these are the baselines already folded into stats_.
    online::OnlineTotals pub_totals;
    uint64_t pub_wrapper_rejected = 0;
    uint64_t pub_deferred_total = 0;
    uint64_t pub_pending = 0;

    online::OnlineAssigner& live() {
      return budgeted != nullptr ? budgeted->assigner() : *assigner;
    }
    const online::OnlineAssigner& live() const {
      return budgeted != nullptr ? budgeted->assigner() : *assigner;
    }
  };

  struct Task {
    bool create = false;
    bool checkpoint_all = false;
    std::string key;
    online::OnlineConfig config;  // create only
    bool translate = false;       // create only
    online::BudgetConfig budget;  // create only
    InspectFn inspect;            // non-null: probe `key`, no updates
    std::vector<online::Update> updates;
    std::size_t batch_size = 0;
    /// Enqueue timestamp (MonotonicMicros), stamped only when a
    /// metrics sink is attached; feeds the queue-dwell histogram.
    uint64_t enqueued_at_us = 0;
  };

  void WorkerLoop();
  void Process(Task& task);
  /// Worker-only: folds a budgeted instance's books (assigner totals +
  /// wrapper counters) into stats_ as deltas against the instance's
  /// published baselines, then advances the baselines. Locks mu_.
  void ReconcileBudgeted(Instance* instance);
  /// Mailbox-side bookkeeping shared by every enqueue path (mu_ NOT
  /// held): dwell stamp + depth gauge.
  void StampEnqueue(Task* task);
  /// Worker-only: appends one changelog record; a failure is fatal
  /// (log-before-ack means nothing may be acked past it).
  void WalAppend(const durability::LogRecord& record);
  /// Worker-only: durability barrier + rotation check, run when the
  /// mailbox drains (the group-commit flush point).
  void WalQuiesce();
  /// Worker-only: cuts a shard image of every instance and rotates.
  void WalRotate();
  /// Worker-only: publishes the wal counters into stats_ (mu_ held).
  void SyncWalStats();

  const std::size_t index_;
  std::shared_ptr<planner::PlannerService> planner_;

  /// Observability. apply_latency_ always points at a live histogram:
  /// the registry's serving.apply_latency_us{shard=i} when a sink is
  /// attached, else the shard-owned own_latency_. The gauge/dwell/task
  /// handles are null without a sink.
  obs::Registry* metrics_ = nullptr;
  obs::Histogram own_latency_;
  obs::Histogram* apply_latency_ = &own_latency_;
  obs::Gauge* mailbox_depth_ = nullptr;
  obs::Histogram* queue_dwell_ = nullptr;
  obs::Counter* tasks_processed_ = nullptr;
  obs::Counter* updates_skipped_ = nullptr;

  ShardHeartbeat heartbeat_;
  std::atomic<uint64_t> apply_delay_us_{0};

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<Task> queue_;
  bool busy_ = false;
  bool shutting_down_ = false;
  ShardStats stats_;             // guarded by mu_

  /// Worker-private: only the worker thread dereferences instances
  /// while tasks are in flight (ForEachInstance synchronizes on mu_
  /// and requires quiescence).
  std::map<std::string, Instance> instances_;

  /// Worker-private after AttachWal (which installs it under mu_ on a
  /// quiescent shard, so the worker's next task dequeue — also under
  /// mu_ — observes it). Null = durability disabled.
  std::unique_ptr<durability::ShardWal> wal_;

  std::thread worker_;
};

}  // namespace msp::serving

#endif  // MSP_SERVING_SHARD_H_
