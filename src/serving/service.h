// ServingService — the sharded serving layer over the online
// subsystem.
//
// The paper's mapping schemas pay off at scale when many evolving
// instances are served concurrently: each tenant / job / join keeps
// its own live schema under a stream of updates. The service routes
// every instance key to one of N shards (stable FNV-1a hash), each
// shard owning a worker thread with exclusive access to its
// OnlineAssigners (shard.h) — the same mutex-free single-writer
// pattern the planner's sharded PlanCache uses for its entries, lifted
// to whole assigners. All shards escalate to ONE shared thread-safe
// PlannerService, so canonically-equal instances across tenants hit a
// common plan cache.
//
//   serving::ServingConfig config;
//   config.num_shards = 4;
//   serving::ServingService service(config);
//   online::OnlineConfig instance;
//   instance.capacity = 100;
//   service.CreateInstance("tenant-7", instance);
//   service.Submit("tenant-7", online::Update::Add(30));
//   service.Flush();                       // barrier: all queues drained
//   service.PrintStats(std::cerr);         // per-shard + aggregate tables
//
// Per-key update order is preserved (a key always lands on the same
// shard's FIFO mailbox); cross-key order is unspecified, as in any
// sharded system.

#ifndef MSP_SERVING_SERVICE_H_
#define MSP_SERVING_SERVICE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "durability/wal.h"
#include "online/assigner.h"
#include "online/budget.h"
#include "planner/service.h"
#include "serving/shard.h"
#include "util/check.h"

namespace msp::serving {

/// Construction-time configuration of a ServingService.
struct ServingConfig {
  /// Number of shards == worker threads. Each instance key is pinned
  /// to one shard for its lifetime.
  std::size_t num_shards = 4;
  /// Configuration of the shared PlannerService (ignored when
  /// `planner_service` is supplied).
  planner::PlannerConfig planner;
  /// Optional externally-owned planner to share beyond this service.
  std::shared_ptr<planner::PlannerService> planner_service;
  /// Optional metrics sink, fanned out to every shard (per-shard
  /// serving.* series), the shared planner (unless `planner_service`
  /// was supplied pre-built), attached WALs, and instances created
  /// through the service.
  obs::Registry* metrics = nullptr;
  /// Default per-instance churn budget (budget.h). `bytes_per_window`
  /// 0 = unbudgeted. Applied to every CreateInstance that does not
  /// pass its own budget; requires translate_trace_ids on those
  /// instances and is ignored (with a warning) once a WAL is attached
  /// — see ServingShard::CreateInstance.
  online::BudgetConfig default_budget;
};

/// Aggregate of the per-shard counters.
struct ServingStats {
  std::vector<ShardStats> shards;  // indexed by shard
  ShardStats total;                // sums; latency histograms merged
};

/// See the file comment. All public methods are thread-safe.
class ServingService {
 public:
  explicit ServingService(const ServingConfig& config = {});

  ServingService(const ServingService&) = delete;
  ServingService& operator=(const ServingService&) = delete;

  /// Attaches per-shard write-ahead changelogs under `options.dir`
  /// (the service appends /shard-<i> per shard and records the shard
  /// count in <dir>/MANIFEST). With `options.recover` false the
  /// directory must be fresh; true crash-recovers whatever it holds —
  /// every recovered instance is installed on its shard and the
  /// recovery counters land in the per-shard stats. Call right after
  /// construction, before creating instances. Returns false with
  /// `*error` on open/recovery failure (the service stays usable,
  /// without durability).
  bool AttachWal(const durability::WalOptions& options,
                 std::string* error = nullptr);

  /// Registers `key` on its shard. `config.shared_planner` is replaced
  /// by the service's planner. `translate_trace_ids` enables the
  /// update-trace id translation for replayed traces (see shard.h).
  /// `budget` overrides the service-wide default churn budget for this
  /// instance (nullopt = use `ServingConfig::default_budget`).
  void CreateInstance(const std::string& key, online::OnlineConfig config,
                      bool translate_trace_ids = false,
                      std::optional<online::BudgetConfig> budget =
                          std::nullopt);

  /// Enqueues one event for `key` (one policy decision per update).
  void Submit(const std::string& key, const online::Update& update);

  /// Enqueues a window of events for `key`; `batch_size` > 1 lets the
  /// assigner amortize policy checks across that many events.
  void SubmitBatch(const std::string& key,
                   std::vector<online::Update> updates,
                   std::size_t batch_size = 0);

  /// Queues one policy decision for every instance with pending
  /// batched updates — the end-of-stream flush of trailing partial
  /// windows, matching the final checkpoint an unbatched replay does
  /// implicitly. Call before Flush() when the streams have ended.
  void CheckpointAll();

  /// Blocks until every shard's mailbox is drained.
  void Flush();

  /// Queues an instance probe on `key`'s shard, ordered after every
  /// earlier Submit of that key; `fn` runs on the shard worker thread
  /// with a filled InstanceProbe (found=false for unknown keys). See
  /// ServingShard::EnqueueInspect for the callback rules.
  void Inspect(const std::string& key, ServingShard::InspectFn fn);

  /// Per-shard and aggregate counters.
  ServingStats stats() const;

  /// Renders per-shard rows (updates, decisions, latency percentiles)
  /// and the aggregate churn/latency summary as aligned tables.
  void PrintStats(std::ostream& out) const;

  /// Runs `fn` over every instance of every shard. Requires
  /// quiescence: call Flush first and do not Submit concurrently.
  void ForEachInstance(
      const std::function<void(const std::string&,
                               const online::OnlineAssigner&)>& fn) const;

  /// Oracle-checks every instance's live schema. Returns false and
  /// names the first offender in `*error`. Requires quiescence.
  bool ValidateAll(std::string* error = nullptr) const;

  /// Stable shard index of `key` (FNV-1a, platform-independent).
  std::size_t ShardOf(const std::string& key) const;

  /// Shard `i`'s progress heartbeat (lock-free probe for the stall
  /// watchdog); valid for the service's lifetime. `i` is
  /// bounds-checked: the watchdog and the RPC admission path poll this
  /// from other threads, where a silent out-of-range read would be UB
  /// that never crashes near its cause.
  const ShardHeartbeat& shard_heartbeat(std::size_t i) const {
    MSP_CHECK_LT(i, shards_.size()) << "shard_heartbeat index";
    return shards_[i]->heartbeat();
  }

  /// Test-only: wedges shard `i`'s worker by `us` microseconds per
  /// applied update (see ServingShard::InjectApplyDelayForTest).
  /// Bounds-checked like shard_heartbeat.
  void InjectApplyDelayForTest(std::size_t i, uint64_t us) {
    MSP_CHECK_LT(i, shards_.size()) << "InjectApplyDelayForTest index";
    shards_[i]->InjectApplyDelayForTest(us);
  }

  planner::PlannerService& planner() { return *planner_; }
  std::size_t num_shards() const { return shards_.size(); }

 private:
  std::shared_ptr<planner::PlannerService> planner_;
  obs::Registry* metrics_ = nullptr;
  online::BudgetConfig default_budget_;
  std::vector<std::unique_ptr<ServingShard>> shards_;
};

}  // namespace msp::serving

#endif  // MSP_SERVING_SERVICE_H_
