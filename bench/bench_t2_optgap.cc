// Experiment T2 — NP-completeness in practice: exact search blow-up
// and the optimality gap of the heuristics on exhaustively solvable
// instances.
//
// The paper proves both mapping schema problems NP-complete. Here the
// branch-and-bound solver's node counts grow explosively with m while
// the polynomial heuristics stay within a small factor of the optimum.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/a2a.h"
#include "core/exact.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace msp;

struct GapStats {
  int instances = 0;
  int optimal_hits = 0;  // heuristic == exact
  double sum_gap = 0.0;
  double max_gap = 0.0;
  uint64_t sum_nodes = 0;
  uint64_t max_nodes = 0;
};

void PrintOptGapTable() {
  TablePrinter table(
      "T2: exact solver blow-up and heuristic optimality gap "
      "(20 random instances per m, q = 16, sizes in [1, 8])");
  table.SetHeader({"m", "solved", "avg nodes", "max nodes", "avg gap",
                   "max gap", "% optimal"});
  Rng rng(404);
  for (std::size_t m = 4; m <= 8; ++m) {
    GapStats stats;
    for (int round = 0; round < 20; ++round) {
      std::vector<InputSize> sizes(m);
      for (auto& w : sizes) w = 1 + rng.UniformInt(8);
      auto instance = A2AInstance::Create(sizes, 16);
      if (!instance->IsFeasible()) continue;
      const auto exact =
          ExactMinReducersA2A(*instance, {.max_nodes = 30'000'000});
      if (!exact.has_value()) continue;
      const auto heuristic = SolveA2AAuto(*instance);
      if (!heuristic.has_value()) continue;
      ++stats.instances;
      stats.sum_nodes += exact->nodes_explored;
      stats.max_nodes = std::max(stats.max_nodes, exact->nodes_explored);
      const double gap =
          static_cast<double>(heuristic->num_reducers()) /
          static_cast<double>(std::max<uint64_t>(
              1, exact->schema.num_reducers()));
      stats.sum_gap += gap;
      stats.max_gap = std::max(stats.max_gap, gap);
      if (heuristic->num_reducers() == exact->schema.num_reducers()) {
        ++stats.optimal_hits;
      }
    }
    if (stats.instances == 0) continue;
    table.AddRow(
        {TablePrinter::Fmt(uint64_t{m}),
         TablePrinter::Fmt(uint64_t(stats.instances)),
         TablePrinter::Fmt(uint64_t(stats.sum_nodes / stats.instances)),
         TablePrinter::Fmt(stats.max_nodes),
         TablePrinter::Fmt(stats.sum_gap / stats.instances, 2),
         TablePrinter::Fmt(stats.max_gap, 2),
         TablePrinter::Fmt(100.0 * stats.optimal_hits / stats.instances, 0)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: node counts explode with m (the problem is\n"
               "NP-complete), while the heuristic gap stays small (often\n"
               "optimal on these toy sizes).\n\n";
}

void BM_ExactA2A(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(500 + m);
  std::vector<InputSize> sizes(m);
  for (auto& w : sizes) w = 1 + rng.UniformInt(8);
  auto instance = A2AInstance::Create(sizes, 16);
  if (!instance->IsFeasible()) {
    state.SkipWithError("infeasible sample");
    return;
  }
  for (auto _ : state) {
    auto result = ExactMinReducersA2A(*instance, {.max_nodes = 30'000'000});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExactA2A)->Arg(4)->Arg(5)->Arg(6)->Arg(7)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintOptGapTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
