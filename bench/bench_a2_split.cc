// Ablation A2 — the X2Y capacity split. The default construction
// gives each side q/2; when the sets have asymmetric total mass
// (W_X >> W_Y, the skew-join reality) sweeping the split c (X gets c,
// Y gets q - c) reduces x(c) * y(c).

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "core/bounds.h"
#include "core/x2y.h"
#include "util/table.h"
#include "workload/sizes.h"

namespace {

using namespace msp;
using benchutil::EvaluateX2Y;

void PrintSplitAblation() {
  TablePrinter table(
      "A2: fixed q/2 split vs tuned split across W_X : W_Y asymmetry "
      "(q = 1000)");
  table.SetHeader({"W_X : W_Y", "|X|", "|Y|", "fixed z", "tuned z",
                   "improvement", "LB"});
  const InputSize q = 1'000;
  for (const std::size_t ratio : {1u, 4u, 16u, 64u}) {
    const std::size_t nx = 240 * ratio;
    const std::size_t ny = 240;
    const auto x_sizes = wl::UniformSizes(nx, 1, 100, 60 + ratio);
    const auto y_sizes = wl::UniformSizes(ny, 1, 100, 61 + ratio);
    auto instance = X2YInstance::Create(x_sizes, y_sizes, q);
    if (!instance.has_value() || !instance->IsFeasible()) continue;
    const X2YLowerBounds lb = X2YLowerBounds::Compute(*instance);
    const auto fixed =
        EvaluateX2Y(*instance, lb, X2YAlgorithm::kBinPackCross);
    const auto tuned =
        EvaluateX2Y(*instance, lb, X2YAlgorithm::kBinPackCrossTuned);
    if (!fixed.has_value() || !tuned.has_value()) continue;
    const double improvement =
        fixed->reducers == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(tuned->reducers) /
                                 static_cast<double>(fixed->reducers));
    table.AddRow({TablePrinter::Fmt(uint64_t{ratio}) + ":1",
                  TablePrinter::Fmt(uint64_t{nx}),
                  TablePrinter::Fmt(uint64_t{ny}),
                  TablePrinter::Fmt(fixed->reducers),
                  TablePrinter::Fmt(tuned->reducers),
                  TablePrinter::Fmt(improvement, 1) + "%",
                  TablePrinter::Fmt(lb.reducers)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: at 1:1 the q/2 split is already right\n"
               "(no gain); with growing asymmetry the tuned split wins —\n"
               "bin-count ceilings make uneven splits pay off even though\n"
               "the continuous optimum is always 1/2.\n\n";
}

void BM_TunedSplit(benchmark::State& state) {
  const std::size_t ratio = static_cast<std::size_t>(state.range(0));
  const auto x_sizes = wl::UniformSizes(240 * ratio, 1, 100, 60 + ratio);
  const auto y_sizes = wl::UniformSizes(240, 1, 100, 61 + ratio);
  auto instance = X2YInstance::Create(x_sizes, y_sizes, 1'000);
  for (auto _ : state) {
    auto schema = SolveX2YBinPackCrossTuned(*instance);
    benchmark::DoNotOptimize(schema);
  }
}
BENCHMARK(BM_TunedSplit)->Arg(1)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSplitAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
