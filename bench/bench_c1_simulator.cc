// Experiment C1 — the cluster simulator: executing update traces on
// the MapReduce engine and reconciling predicted vs. actually
// re-shuffled bytes.
//
// For each trace shape (the mixed A2A/X2Y streams plus the flash-crowd
// and capacity-oscillation adversarial shapes), a ClusterSimulator
// replays the trace: every update's re-shuffle plan runs as a real
// engine job, and the engine-measured bytes are reconciled against the
// assigner's predicted churn. The table reports both sides, their gap
// (the whole point: it must be exactly 0 on every shape — this is the
// executable form of the paper's communication cost model), and the
// simulator's throughput (updates/s including engine execution, vs the
// accounting-only replay of bench_o1_online).
//
// `--smoke` runs shortened traces and skips the Google Benchmark
// loops — the CI Release leg uses it so the predicted-vs-executed
// reconciliation runs on every push. The process exits non-zero when
// any shape fails to reconcile, in smoke and full mode alike.
//
// `--json=FILE` writes the BENCH_c1_simulator.json trajectory file
// (gated: per-shape gap/mismatch/executed-bytes/replans — see
// tools/benchgate.py). Results are mirrored to bench_c1_simulator.csv
// in the working directory.

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "online/trace.h"
#include "sim/simulator.h"
#include "util/csv_writer.h"
#include "util/table.h"
#include "util/timer.h"
#include "workload/updates.h"

namespace {

using namespace msp;

struct TraceShape {
  std::string name;
  std::string key;  // metric-name prefix in the bench JSON
  wl::TraceConfig config;
};

std::vector<TraceShape> MakeShapes(bool smoke) {
  const std::size_t steps = smoke ? 120 : 400;
  wl::TraceConfig mixed_a2a;
  mixed_a2a.initial_inputs = 30;
  mixed_a2a.steps = steps;
  mixed_a2a.seed = 71;
  wl::TraceConfig mixed_x2y = mixed_a2a;
  mixed_x2y.x2y = true;
  mixed_x2y.seed = 72;
  wl::TraceConfig flash = mixed_a2a;
  flash.shape = wl::TraceShape::kFlashCrowd;
  flash.seed = 73;
  wl::TraceConfig oscillation = mixed_a2a;
  oscillation.shape = wl::TraceShape::kCapacityOscillation;
  oscillation.seed = 74;
  return {
      {"a2a mixed", "a2a_mixed", mixed_a2a},
      {"x2y mixed", "x2y_mixed", mixed_x2y},
      {"a2a flash-crowd", "a2a_flash", flash},
      {"a2a capacity-osc", "a2a_caposc", oscillation},
  };
}

sim::SimConfig MakeSimConfig(const online::UpdateTrace& trace) {
  sim::SimConfig config;
  config.online.x2y = trace.x2y;
  config.online.capacity = trace.initial_capacity;
  config.online.plan_options.use_portfolio = false;
  config.oracle_every = 50;
  return config;
}

// Returns the number of shapes that failed to reconcile.
int PrintReconciliationTable(bool smoke, CsvWriter* csv,
                             benchutil::BenchJson* json) {
  TablePrinter table(
      "C1: predicted vs executed re-shuffle across trace shapes");
  table.SetHeader({"trace", "steps", "predicted B", "executed B", "gap B",
                   "mismatched", "replans", "engine jobs", "updates/s"});
  csv->WriteRow({"table", "trace", "steps", "predicted_bytes",
                 "executed_bytes", "gap_bytes", "mismatched_steps",
                 "replans", "engine_jobs", "updates_per_s"});
  int failures = 0;
  for (const TraceShape& shape : MakeShapes(smoke)) {
    const online::UpdateTrace trace = wl::GenerateTrace(shape.config);
    sim::ClusterSimulator simulator(MakeSimConfig(trace));
    Stopwatch wall;
    const bool ok = simulator.ReplayTrace(trace);
    const double seconds = wall.ElapsedSeconds();
    const sim::SimReport& report = simulator.report();
    if (!ok) {
      ++failures;
      std::cout << "RECONCILIATION FAILED (" << shape.name
                << "): " << report.first_error << "\n";
    }
    const uint64_t gap =
        report.predicted_bytes > report.executed_bytes
            ? report.predicted_bytes - report.executed_bytes
            : report.executed_bytes - report.predicted_bytes;
    const double rate =
        seconds > 0.0
            ? static_cast<double>(trace.updates.size()) / seconds
            : 0.0;
    table.AddRow({shape.name, TablePrinter::Fmt(trace.updates.size()),
                  TablePrinter::Fmt(report.predicted_bytes),
                  TablePrinter::Fmt(report.executed_bytes),
                  TablePrinter::Fmt(gap),
                  TablePrinter::Fmt(report.mismatched_steps),
                  TablePrinter::Fmt(simulator.assigner().totals().replans),
                  TablePrinter::Fmt(report.reshuffle_jobs),
                  TablePrinter::Fmt(rate, 0)});
    csv->WriteRow({"C1", shape.name, std::to_string(trace.updates.size()),
                   std::to_string(report.predicted_bytes),
                   std::to_string(report.executed_bytes),
                   std::to_string(gap),
                   std::to_string(report.mismatched_steps),
                   std::to_string(simulator.assigner().totals().replans),
                   std::to_string(report.reshuffle_jobs),
                   TablePrinter::Fmt(rate, 0)});
    // Deterministic series are gated (any drift > 15% fails CI);
    // throughput is trajectory-only.
    json->Add(shape.key + ".gap_bytes", static_cast<double>(gap), "bytes");
    json->Add(shape.key + ".mismatched_steps",
              static_cast<double>(report.mismatched_steps), "steps");
    json->Add(shape.key + ".executed_bytes",
              static_cast<double>(report.executed_bytes), "bytes");
    json->Add(shape.key + ".replans",
              static_cast<double>(simulator.assigner().totals().replans),
              "replans");
    json->Add(shape.key + ".updates_per_s", rate, "updates/s", "higher",
              /*gate=*/false);
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: the gap is exactly 0 on every trace — the bytes\n"
         "the engine re-shuffles executing each update's plan equal the\n"
         "assigner's predicted churn bytes, including min-move re-plan\n"
         "deploys. Throughput is bounded by the engine jobs (compare the\n"
         "accounting-only replay rates in bench_o1_online).\n\n";
  return failures;
}

// --- C1b: persistent worker pool vs per-job spin-up ---
//
// A step's delta re-shuffle is a tiny engine job; before the shared
// pool, every job paid three thread-pool constructions (map, shuffle,
// reduce) and the simulator constructed a fresh engine per Execute and
// OracleCheck. This table replays the same trace with the persistent
// pool on (one spawn for the whole simulation) and off (the seed
// behavior) and reports the throughput delta. Wall-clock rates are
// machine-dependent — trajectory-only, never gated.
void PrintPoolTable(bool smoke, CsvWriter* csv,
                    benchutil::BenchJson* json) {
  TablePrinter table("C1b: simulator throughput — persistent pool on/off");
  table.SetHeader({"trace", "pool", "updates/s", "speedup"});
  csv->WriteRow({"table", "trace", "pool", "updates_per_s", "speedup"});
  for (const TraceShape& shape : MakeShapes(smoke)) {
    double rate_of[2] = {0, 0};
    for (const bool persistent : {false, true}) {
      const online::UpdateTrace trace = wl::GenerateTrace(shape.config);
      sim::SimConfig config = MakeSimConfig(trace);
      config.oracle_every = 0;  // isolate the per-step delta jobs
      config.persistent_pool = persistent;
      sim::ClusterSimulator simulator(config);
      Stopwatch wall;
      simulator.ReplayTrace(trace);
      const double seconds = wall.ElapsedSeconds();
      rate_of[persistent] =
          seconds > 0.0
              ? static_cast<double>(trace.updates.size()) / seconds
              : 0.0;
    }
    const double speedup =
        rate_of[0] > 0.0 ? rate_of[1] / rate_of[0] : 0.0;
    for (const bool persistent : {false, true}) {
      table.AddRow({shape.name, persistent ? "persistent" : "per-job",
                    TablePrinter::Fmt(rate_of[persistent], 0),
                    persistent ? TablePrinter::Fmt(speedup, 2) : "1.00"});
      csv->WriteRow({"C1b", shape.name,
                     persistent ? "persistent" : "per-job",
                     TablePrinter::Fmt(rate_of[persistent], 0),
                     persistent ? TablePrinter::Fmt(speedup, 2) : "1.00"});
    }
    json->Add(shape.key + ".pool_speedup", speedup, "x", "higher",
              /*gate=*/false);
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: the persistent pool wins by whatever share of\n"
         "a step was thread spin-up — largest on traces whose plans ship\n"
         "few bytes per update (the job itself is nearly free).\n\n";
}

void BM_SimulatorStep(benchmark::State& state) {
  wl::TraceConfig config;
  config.initial_inputs = static_cast<std::size_t>(state.range(0));
  config.steps = 200;
  config.seed = 75;
  const online::UpdateTrace trace = wl::GenerateTrace(config);
  for (auto _ : state) {
    sim::ClusterSimulator simulator(MakeSimConfig(trace));
    const bool ok = simulator.ReplayTrace(trace);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.updates.size()));
}
BENCHMARK(BM_SimulatorStep)->Arg(30)->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  const benchutil::BenchArgs args = benchutil::ParseBenchArgs(&argc, argv);

  CsvWriter csv("bench_c1_simulator.csv");
  benchutil::BenchJson json("c1_simulator");
  const int failures = PrintReconciliationTable(args.smoke, &csv, &json);
  PrintPoolTable(args.smoke, &csv, &json);
  if (benchutil::EmitBenchJson(json, args) != 0) return 1;
  if (failures > 0) return 1;
  if (!args.smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
