// Experiment S1 — the sharded serving layer: throughput scaling with
// shard count, and per-update repair latency under the two LiveState
// coverage backends, on a many-instance replay workload.
//
//  * Scaling table — the same bundle of per-instance update traces is
//    replayed through ServingServices with 1, 2, and 4 shards (one
//    worker thread per shard, all escalating to one shared planner).
//    Expected shape: near-linear updates/s scaling until the machine
//    runs out of cores (a single-core container flattens at 1x).
//  * Backend table — the same serving workload with the dense
//    triangular pair-coverage array vs the legacy unordered_map
//    baseline, comparing p50/p99 repair latency across all shards.
//
// `--smoke` shortens the workloads and skips the Google Benchmark
// loops; `--json=FILE` writes the BENCH_s1_serving.json trajectory
// file (gated metric: the processed-update accounting; throughput and
// latency ride along ungated). Results are mirrored to
// bench_s1_serving.csv in the working directory.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "online/assigner.h"
#include "online/coverage.h"
#include "online/trace.h"
#include "serving/service.h"
#include "util/csv_writer.h"
#include "util/summary_stats.h"
#include "util/table.h"
#include "util/timer.h"
#include "workload/updates.h"

namespace {

using namespace msp;

std::vector<online::UpdateTrace> MakeWorkload(std::size_t instances,
                                              std::size_t initial,
                                              std::size_t steps) {
  std::vector<online::UpdateTrace> traces;
  traces.reserve(instances);
  wl::TraceConfig config;
  config.initial_inputs = initial;
  config.steps = steps;
  for (std::size_t i = 0; i < instances; ++i) {
    config.x2y = i % 2 == 1;
    config.seed = 900 + i;
    traces.push_back(wl::GenerateTrace(config));
  }
  return traces;
}

online::OnlineConfig InstanceConfig(const online::UpdateTrace& trace,
                                    online::PairCoverage::Backend backend) {
  online::OnlineConfig config;
  config.x2y = trace.x2y;
  config.capacity = trace.initial_capacity;
  config.policy_spec.name = "drift";
  config.policy_spec.cooldown = 8;
  config.coverage = backend;
  config.plan_options.use_portfolio = false;
  return config;
}

struct ServeOutcome {
  double seconds = 0;
  uint64_t updates = 0;
  double p50_us = 0;
  double p99_us = 0;
};

ServeOutcome RunWorkload(const std::vector<online::UpdateTrace>& traces,
                         std::size_t shards,
                         online::PairCoverage::Backend backend,
                         std::size_t batch) {
  serving::ServingConfig config;
  config.num_shards = shards;
  serving::ServingService service(config);
  Stopwatch watch;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const std::string key = "bench-" + std::to_string(i);
    service.CreateInstance(key, InstanceConfig(traces[i], backend),
                           /*translate_trace_ids=*/true);
    service.SubmitBatch(key, traces[i].updates, batch);
  }
  service.Flush();
  ServeOutcome outcome;
  outcome.seconds = watch.ElapsedSeconds();
  const serving::ServingStats stats = service.stats();
  outcome.updates = stats.total.updates;
  if (stats.total.latency.count() > 0) {
    outcome.p50_us = stats.total.latency.Percentile(50.0);
    outcome.p99_us = stats.total.latency.Percentile(99.0);
  }
  std::string error;
  if (!service.ValidateAll(&error)) {
    std::cerr << "S1: INVALID serving result: " << error << "\n";
  }
  return outcome;
}

void PrintScalingTable(bool smoke, CsvWriter* csv,
                       benchutil::BenchJson* json) {
  const auto traces = MakeWorkload(/*instances=*/8, /*initial=*/60,
                                   smoke ? 120 : 300);
  TablePrinter table(
      "S1: serving throughput vs shard count (8 instances, batch=8)");
  table.SetHeader({"shards", "updates", "seconds", "updates/s", "speedup"});
  csv->WriteRow({"table", "shards", "updates", "seconds", "updates_per_s",
                 "speedup"});
  double base_rate = 0;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    const ServeOutcome outcome = RunWorkload(
        traces, shards, online::PairCoverage::Backend::kTriangular, 8);
    const double rate =
        outcome.seconds > 0
            ? static_cast<double>(outcome.updates) / outcome.seconds
            : 0;
    if (shards == 1) base_rate = rate;
    const double speedup = base_rate > 0 ? rate / base_rate : 0;
    table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(shards)),
                  TablePrinter::Fmt(outcome.updates),
                  TablePrinter::Fmt(outcome.seconds, 3),
                  TablePrinter::Fmt(rate, 0),
                  TablePrinter::Fmt(speedup, 2)});
    csv->WriteRow({"S1", std::to_string(shards),
                   std::to_string(outcome.updates),
                   TablePrinter::Fmt(outcome.seconds, 3),
                   TablePrinter::Fmt(rate, 0),
                   TablePrinter::Fmt(speedup, 2)});
    const std::string key = "scaling.shards" + std::to_string(shards);
    // The processed-update count is workload accounting, not timing —
    // a drift means updates were dropped or double-counted.
    json->Add(key + ".updates", static_cast<double>(outcome.updates),
              "updates");
    json->Add(key + ".updates_per_s", rate, "updates/s", "higher",
              /*gate=*/false);
    json->Add(key + ".p99_us", outcome.p99_us, "us", "lower",
              /*gate=*/false);
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: updates/s grows near-linearly in shards while\n"
         "cores last — instances are pinned to shard workers and never\n"
         "contend, and the shared planner only serializes escalations.\n\n";
}

void PrintBackendTable(bool smoke, CsvWriter* csv) {
  const auto traces = MakeWorkload(/*instances=*/8, /*initial=*/150,
                                   smoke ? 100 : 250);
  TablePrinter table(
      "S1b: repair latency by coverage backend (4 shards, m0=150)");
  table.SetHeader({"backend", "updates", "p50 us", "p99 us", "seconds"});
  csv->WriteRow({"table", "backend", "updates", "p50_us", "p99_us",
                 "seconds"});
  for (const auto& [name, backend] :
       {std::pair<const char*, online::PairCoverage::Backend>{
            "triangular", online::PairCoverage::Backend::kTriangular},
        {"hash (baseline)", online::PairCoverage::Backend::kHash}}) {
    const ServeOutcome outcome = RunWorkload(traces, 4, backend, 8);
    table.AddRow({name, TablePrinter::Fmt(outcome.updates),
                  TablePrinter::Fmt(outcome.p50_us, 1),
                  TablePrinter::Fmt(outcome.p99_us, 1),
                  TablePrinter::Fmt(outcome.seconds, 3)});
    csv->WriteRow({"S1b", name, std::to_string(outcome.updates),
                   TablePrinter::Fmt(outcome.p50_us, 1),
                   TablePrinter::Fmt(outcome.p99_us, 1),
                   TablePrinter::Fmt(outcome.seconds, 3)});
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: the triangular layout trims both percentiles;\n"
         "the gap widens with instance size (see O1b in bench_o1_online\n"
         "for the m >= 10^4 regime).\n\n";
}

void BM_ServingReplay(benchmark::State& state) {
  const auto traces = MakeWorkload(/*instances=*/6, /*initial=*/40,
                                   /*steps=*/150);
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const ServeOutcome outcome = RunWorkload(
        traces, shards, online::PairCoverage::Backend::kTriangular, 8);
    benchmark::DoNotOptimize(outcome);
  }
  uint64_t events = 0;
  for (const auto& trace : traces) events += trace.updates.size();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events));
}
BENCHMARK(BM_ServingReplay)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const benchutil::BenchArgs args = benchutil::ParseBenchArgs(&argc, argv);

  CsvWriter csv("bench_s1_serving.csv");
  benchutil::BenchJson json("s1_serving");
  PrintScalingTable(args.smoke, &csv, &json);
  PrintBackendTable(args.smoke, &csv);
  if (benchutil::EmitBenchJson(json, args) != 0) return 1;
  if (!args.smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
