// Experiment F7 — the equal-sized special case: the grouping
// construction vs the Schönheim covering bound.
//
// With unit sizes and k = q inputs per reducer, the mapping schema is a
// covering design C(m, k, 2). Expected shape: the grouping technique
// stays within ~2x of Schönheim across m and k (the paper's equal-size
// guarantee), and the exact solver confirms tightness on toy sizes.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "core/a2a.h"
#include "core/bounds.h"
#include "core/exact.h"
#include "util/table.h"
#include "workload/sizes.h"

namespace {

using namespace msp;
using benchutil::EvaluateA2A;

void PrintEqualTable() {
  TablePrinter table(
      "F7: equal-sized inputs (w = 1): grouping vs Schönheim bound");
  table.SetHeader({"m", "k=q", "grouping z", "Schönheim LB", "ratio",
                   "pairing z"});
  for (std::size_t m : {32u, 64u, 128u, 512u, 2'048u}) {
    for (uint64_t k : {4u, 8u, 16u, 64u}) {
      if (k >= m) continue;
      auto instance =
          A2AInstance::Create(wl::EqualSizes(m, 1), k);
      const A2ALowerBounds lb = A2ALowerBounds::Compute(*instance);
      const auto grouping =
          EvaluateA2A(*instance, lb, A2AAlgorithm::kEqualGrouping);
      const auto pairing =
          EvaluateA2A(*instance, lb, A2AAlgorithm::kBinPackPairing);
      if (!grouping.has_value()) continue;
      table.AddRow({TablePrinter::Fmt(uint64_t{m}),
                    TablePrinter::Fmt(uint64_t{k}),
                    TablePrinter::Fmt(grouping->reducers),
                    TablePrinter::Fmt(lb.schonheim),
                    benchutil::RatioString(grouping->reducers, lb.schonheim),
                    pairing ? TablePrinter::Fmt(pairing->reducers) : "-"});
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: ratio hovers around 2 (the grouping\n"
               "technique's guarantee) and approaches it from below for\n"
               "large m/k.\n\n";
}

void PrintExactComparison() {
  TablePrinter table(
      "F7b: exact covering numbers on toy sizes vs grouping");
  table.SetHeader({"m", "k", "exact z", "grouping z", "Schönheim"});
  struct Case {
    std::size_t m;
    uint64_t k;
  };
  for (const Case c : {Case{4, 2}, Case{5, 2}, Case{6, 3}, Case{7, 3}}) {
    auto instance = A2AInstance::Create(wl::EqualSizes(c.m, 1), c.k);
    const auto exact =
        ExactMinReducersA2A(*instance, {.max_nodes = 40'000'000});
    const auto grouping = SolveA2AEqualGrouping(*instance);
    const A2ALowerBounds lb = A2ALowerBounds::Compute(*instance);
    table.AddRow(
        {TablePrinter::Fmt(uint64_t{c.m}), TablePrinter::Fmt(uint64_t{c.k}),
         exact ? TablePrinter::Fmt(uint64_t{exact->schema.num_reducers()})
               : "budget",
         grouping ? TablePrinter::Fmt(uint64_t{grouping->num_reducers()})
                  : "-",
         TablePrinter::Fmt(lb.schonheim)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void BM_EqualGrouping(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  auto instance = A2AInstance::Create(wl::EqualSizes(m, 1), 16);
  for (auto _ : state) {
    auto schema = SolveA2AEqualGrouping(*instance);
    benchmark::DoNotOptimize(schema);
  }
}
BENCHMARK(BM_EqualGrouping)->Arg(512)->Arg(2'048);

}  // namespace

int main(int argc, char** argv) {
  PrintEqualTable();
  PrintExactComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
