// Experiment F2 — tradeoff (iii): reducer capacity q vs communication
// cost (and replication rate) for the A2A problem.
//
// Expected shape: communication ~ W * 2W/q — inversely proportional to
// q — hugging the replication lower bound within ~2x; the naive
// pair-per-reducer baseline pays (m-1) copies of every input
// regardless of q.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "core/a2a.h"
#include "core/bounds.h"
#include "core/schema.h"
#include "util/table.h"
#include "workload/sizes.h"

namespace {

using namespace msp;
using benchutil::EvaluateA2A;

constexpr std::size_t kNumInputs = 2'000;

void PrintCommVsQ() {
  const auto sizes = wl::UniformSizes(kNumInputs, 1, 100, 42);
  uint64_t total = 0;
  for (auto w : sizes) total += w;

  TablePrinter table(
      "F2: communication cost vs capacity q (m = 2000, uniform sizes "
      "1..100, W = total input size)");
  table.SetHeader({"q", "comm (pairing)", "comm LB", "ratio",
                   "repl rate", "naive comm"});
  for (InputSize q : {210u, 300u, 420u, 600u, 900u, 1'400u, 2'000u, 3'000u,
                      4'500u, 7'000u}) {
    auto instance = A2AInstance::Create(sizes, q);
    if (!instance.has_value() || !instance->IsFeasible()) continue;
    const A2ALowerBounds lb = A2ALowerBounds::Compute(*instance);
    const auto pairing =
        EvaluateA2A(*instance, lb, A2AAlgorithm::kBinPackPairing);
    if (!pairing.has_value()) continue;
    // Naive: every input participates in m-1 pair reducers.
    const uint64_t naive_comm = total * (kNumInputs - 1);
    table.AddRow({TablePrinter::Fmt(uint64_t{q}),
                  TablePrinter::Fmt(pairing->communication),
                  TablePrinter::Fmt(lb.communication),
                  TablePrinter::Fmt(pairing->comm_ratio, 2),
                  TablePrinter::Fmt(pairing->replication, 2),
                  TablePrinter::Fmt(naive_comm)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: communication decays like 1/q (replication\n"
               "rate ~ 2W/q), within ~2x of the replication lower bound;\n"
               "naive is constant at W*(m-1), thousands of times larger.\n\n";
}

void BM_SchemaStatsCompute(benchmark::State& state) {
  const auto sizes = wl::UniformSizes(kNumInputs, 1, 100, 42);
  auto instance = A2AInstance::Create(sizes, 900);
  const auto schema = SolveA2ABinPackPairing(*instance);
  for (auto _ : state) {
    auto stats = SchemaStats::Compute(*instance, *schema);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_SchemaStatsCompute)->Unit(benchmark::kMillisecond);

void BM_A2ALowerBounds(benchmark::State& state) {
  const auto sizes = wl::UniformSizes(
      static_cast<std::size_t>(state.range(0)), 1, 100, 42);
  auto instance = A2AInstance::Create(sizes, 900);
  for (auto _ : state) {
    auto lb = A2ALowerBounds::Compute(*instance);
    benchmark::DoNotOptimize(lb);
  }
}
BENCHMARK(BM_A2ALowerBounds)->Arg(2'000)->Arg(20'000);

}  // namespace

int main(int argc, char** argv) {
  PrintCommVsQ();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
