// Ablation A3 — how much of the gap to the lower bound can local
// post-optimization (reducer merging + redundant-copy pruning)
// recover, per construction algorithm?
//
// Expected shape: the greedy baseline improves a lot (its schemas are
// fragmented); the bin-packing constructions barely move — they are
// already locally tight, which is evidence the remaining gap to the
// LB is structural, not sloppiness.

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/a2a.h"
#include "core/bounds.h"
#include "core/improve.h"
#include "core/instance.h"
#include "core/validate.h"
#include "util/check.h"
#include "util/table.h"
#include "workload/sizes.h"

namespace {

using namespace msp;

void PrintImproveTable() {
  const auto sizes = wl::ZipfSizes(300, 2, 100, 1.2, 313);
  auto instance = A2AInstance::Create(sizes, 400);
  const A2ALowerBounds lb = A2ALowerBounds::Compute(*instance);

  TablePrinter table(
      "A3: post-optimization (merge + prune) per construction "
      "(m = 300 Zipf sizes, q = 400)");
  table.SetHeader({"algorithm", "z before", "z after", "comm before",
                   "comm after", "z/LB after"});
  for (A2AAlgorithm algo :
       {A2AAlgorithm::kBinPackPairing, A2AAlgorithm::kBigSmall,
        A2AAlgorithm::kGreedyCover, A2AAlgorithm::kNaiveAllPairs}) {
    auto schema = SolveA2A(*instance, algo);
    if (!schema.has_value()) continue;
    const SchemaStats before = SchemaStats::Compute(*instance, *schema);
    MergeReducers(*instance, &*schema);
    PruneRedundantCopiesA2A(*instance, &*schema);
    const SchemaStats after = SchemaStats::Compute(*instance, *schema);
    MSP_CHECK(ValidateA2A(*instance, *schema).ok);
    table.AddRow({A2AAlgorithmName(algo),
                  TablePrinter::Fmt(before.num_reducers),
                  TablePrinter::Fmt(after.num_reducers),
                  TablePrinter::Fmt(before.communication_cost),
                  TablePrinter::Fmt(after.communication_cost),
                  TablePrinter::Fmt(
                      static_cast<double>(after.num_reducers) /
                          static_cast<double>(lb.reducers),
                      2)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: naive/greedy schemas shrink massively; the\n"
               "paper's constructions are already near their local optimum.\n"
               "\n";
}

void BM_MergeReducers(benchmark::State& state) {
  // Merging is O(z^2 * reducer size); keep m modest so the timing
  // series stays cheap (the experiment table above is independent).
  const auto sizes = wl::ZipfSizes(
      static_cast<std::size_t>(state.range(0)), 2, 100, 1.2, 313);
  auto instance = A2AInstance::Create(sizes, 400);
  const auto schema = SolveA2AGreedyCover(*instance);
  for (auto _ : state) {
    MappingSchema copy = *schema;
    MergeReducers(*instance, &copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_MergeReducers)->Arg(100)->Arg(250)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintImproveTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
