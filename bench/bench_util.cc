#include "bench_util.h"

#include "core/validate.h"
#include "util/check.h"
#include "util/table.h"

namespace msp::benchutil {

namespace {

SolverEval ScoreSchema(const SchemaStats& stats, uint64_t lb_reducers,
                       uint64_t lb_comm) {
  SolverEval eval;
  eval.reducers = stats.num_reducers;
  eval.communication = stats.communication_cost;
  eval.max_load = stats.max_load;
  eval.replication = stats.replication_rate;
  eval.reducer_ratio =
      lb_reducers == 0 ? 0.0
                       : static_cast<double>(stats.num_reducers) /
                             static_cast<double>(lb_reducers);
  eval.comm_ratio = lb_comm == 0
                        ? 0.0
                        : static_cast<double>(stats.communication_cost) /
                              static_cast<double>(lb_comm);
  return eval;
}

}  // namespace

std::optional<SolverEval> EvaluateA2A(const A2AInstance& instance,
                                      const A2ALowerBounds& lb,
                                      A2AAlgorithm algorithm,
                                      const A2AOptions& options) {
  const auto schema = SolveA2A(instance, algorithm, options);
  if (!schema.has_value()) return std::nullopt;
  // Benches always run on validated schemas: a broken construction must
  // fail loudly, not produce a pretty table.
  const ValidationResult valid = ValidateA2A(instance, *schema);
  MSP_CHECK(valid.ok) << A2AAlgorithmName(algorithm) << ": " << valid.error;
  return ScoreSchema(SchemaStats::Compute(instance, *schema), lb.reducers,
                     lb.communication);
}

std::optional<SolverEval> EvaluateX2Y(const X2YInstance& instance,
                                      const X2YLowerBounds& lb,
                                      X2YAlgorithm algorithm,
                                      const X2YOptions& options) {
  const auto schema = SolveX2Y(instance, algorithm, options);
  if (!schema.has_value()) return std::nullopt;
  const ValidationResult valid = ValidateX2Y(instance, *schema);
  MSP_CHECK(valid.ok) << X2YAlgorithmName(algorithm) << ": " << valid.error;
  return ScoreSchema(SchemaStats::Compute(instance, *schema), lb.reducers,
                     lb.communication);
}

std::string RatioString(uint64_t value, uint64_t bound) {
  if (bound == 0) return "-";
  return TablePrinter::Fmt(
      static_cast<double>(value) / static_cast<double>(bound), 2);
}

}  // namespace msp::benchutil
