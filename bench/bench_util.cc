#include "bench_util.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <utility>

#include "core/validate.h"
#include "util/check.h"
#include "util/table.h"

namespace msp::benchutil {

namespace {

SolverEval ScoreSchema(const SchemaStats& stats, uint64_t lb_reducers,
                       uint64_t lb_comm) {
  SolverEval eval;
  eval.reducers = stats.num_reducers;
  eval.communication = stats.communication_cost;
  eval.max_load = stats.max_load;
  eval.replication = stats.replication_rate;
  eval.reducer_ratio =
      lb_reducers == 0 ? 0.0
                       : static_cast<double>(stats.num_reducers) /
                             static_cast<double>(lb_reducers);
  eval.comm_ratio = lb_comm == 0
                        ? 0.0
                        : static_cast<double>(stats.communication_cost) /
                              static_cast<double>(lb_comm);
  return eval;
}

}  // namespace

std::optional<SolverEval> EvaluateA2A(const A2AInstance& instance,
                                      const A2ALowerBounds& lb,
                                      A2AAlgorithm algorithm,
                                      const A2AOptions& options) {
  const auto schema = SolveA2A(instance, algorithm, options);
  if (!schema.has_value()) return std::nullopt;
  // Benches always run on validated schemas: a broken construction must
  // fail loudly, not produce a pretty table.
  const ValidationResult valid = ValidateA2A(instance, *schema);
  MSP_CHECK(valid.ok) << A2AAlgorithmName(algorithm) << ": " << valid.error;
  return ScoreSchema(SchemaStats::Compute(instance, *schema), lb.reducers,
                     lb.communication);
}

std::optional<SolverEval> EvaluateX2Y(const X2YInstance& instance,
                                      const X2YLowerBounds& lb,
                                      X2YAlgorithm algorithm,
                                      const X2YOptions& options) {
  const auto schema = SolveX2Y(instance, algorithm, options);
  if (!schema.has_value()) return std::nullopt;
  const ValidationResult valid = ValidateX2Y(instance, *schema);
  MSP_CHECK(valid.ok) << X2YAlgorithmName(algorithm) << ": " << valid.error;
  return ScoreSchema(SchemaStats::Compute(instance, *schema), lb.reducers,
                     lb.communication);
}

std::string RatioString(uint64_t value, uint64_t bound) {
  if (bound == 0) return "-";
  return TablePrinter::Fmt(
      static_cast<double>(value) / static_cast<double>(bound), 2);
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // never expected
    out.push_back(c);
  }
  return out;
}

// Integral values render exactly (the gated metrics are counts and
// bytes); everything else gets enough digits to round-trip.
std::string JsonNumber(double value) {
  char buf[40];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<int64_t>(value));
  } else if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "0");
  }
  return buf;
}

}  // namespace

BenchJson::BenchJson(std::string bench_id)
    : bench_id_(std::move(bench_id)) {}

void BenchJson::Add(const std::string& name, double value,
                    const std::string& unit, const std::string& better,
                    bool gate) {
  MSP_CHECK(better == "lower" || better == "higher")
      << name << ": better must be lower|higher";
  metrics_.push_back({name, value, unit, better, gate});
}

std::string BenchJson::GitSha() {
  for (const char* var : {"GITHUB_SHA", "MSP_GIT_SHA"}) {
    const char* sha = std::getenv(var);
    if (sha != nullptr && sha[0] != '\0') return sha;
  }
  return "unknown";
}

bool BenchJson::WriteTo(const std::string& path, std::string* error) const {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  out << "{\n  \"bench\": \"" << JsonEscape(bench_id_) << "\",\n"
      << "  \"schema_version\": 1,\n"
      << "  \"git_sha\": \"" << JsonEscape(GitSha()) << "\",\n"
      << "  \"metrics\": [\n";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const Metric& m = metrics_[i];
    out << "    {\"name\": \"" << JsonEscape(m.name) << "\", \"value\": "
        << JsonNumber(m.value) << ", \"unit\": \"" << JsonEscape(m.unit)
        << "\", \"better\": \"" << m.better << "\", \"gate\": "
        << (m.gate ? "true" : "false") << "}"
        << (i + 1 < metrics_.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failed: " + path;
    return false;
  }
  return true;
}

BenchArgs ParseBenchArgs(int* argc, char** argv) {
  BenchArgs args;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      args.json_path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return args;
}

int EmitBenchJson(const BenchJson& json, const BenchArgs& args) {
  if (args.json_path.empty()) return 0;
  std::string error;
  if (!json.WriteTo(args.json_path, &error)) {
    std::cerr << "bench json: " << error << "\n";
    return 1;
  }
  return 0;
}

}  // namespace msp::benchutil
