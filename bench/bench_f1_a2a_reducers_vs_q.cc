// Experiment F1 — tradeoff (i): reducer capacity q vs number of
// reducers for the A2A problem (m = 2000 different-sized inputs).
//
// Series: naive one-reducer-per-pair (analytic), the bin-packing
// pairing construction, the q/3-triples extension, and the lower
// bound. Expected shape: the construction tracks the LB within ~2x
// everywhere, with z shrinking quadratically as q grows; naive is
// flat (m(m-1)/2) and orders of magnitude above.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "core/a2a.h"
#include "core/bounds.h"
#include "util/math_util.h"
#include "util/table.h"
#include "workload/sizes.h"

namespace {

using namespace msp;
using benchutil::EvaluateA2A;

constexpr std::size_t kNumInputs = 2'000;

void PrintReducersVsQ() {
  const auto sizes = wl::UniformSizes(kNumInputs, 1, 100, 42);
  TablePrinter table(
      "F1: number of reducers vs capacity q (m = 2000, uniform sizes "
      "1..100)");
  table.SetHeader({"q", "naive pairs", "binpack-pairing", "triples",
                   "LB reducers", "pairing/LB"});
  for (InputSize q : {210u, 300u, 420u, 600u, 900u, 1'400u, 2'000u, 3'000u,
                      4'500u, 7'000u}) {
    auto instance = A2AInstance::Create(sizes, q);
    if (!instance.has_value() || !instance->IsFeasible()) continue;
    const A2ALowerBounds lb = A2ALowerBounds::Compute(*instance);
    const auto pairing =
        EvaluateA2A(*instance, lb, A2AAlgorithm::kBinPackPairing);
    const auto triples =
        EvaluateA2A(*instance, lb, A2AAlgorithm::kBinPackTriples);
    table.AddRow({TablePrinter::Fmt(uint64_t{q}),
                  TablePrinter::Fmt(PairCount(kNumInputs)),
                  pairing ? TablePrinter::Fmt(pairing->reducers) : "-",
                  triples ? TablePrinter::Fmt(triples->reducers) : "-",
                  TablePrinter::Fmt(lb.reducers),
                  pairing ? TablePrinter::Fmt(pairing->reducer_ratio, 2)
                          : "-"});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: z ~ 2(W/q)^2 for the pairing construction\n"
               "(quadratic decay in q, ratio ~2 vs LB); the q/3-triples\n"
               "variant wins when sizes allow three bins per reducer.\n\n";
}

void BM_BinPackPairing(benchmark::State& state) {
  const auto sizes = wl::UniformSizes(kNumInputs, 1, 100, 42);
  auto instance =
      A2AInstance::Create(sizes, static_cast<InputSize>(state.range(0)));
  for (auto _ : state) {
    auto schema = SolveA2ABinPackPairing(*instance);
    benchmark::DoNotOptimize(schema);
  }
}
BENCHMARK(BM_BinPackPairing)->Arg(300)->Arg(1'400)->Arg(7'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReducersVsQ();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
