// Experiment R1 — the network front door: closed-loop RPC load over
// real loopback sockets into the serving shards.
//
//  * Load table — N client threads, each with one TCP connection,
//    drive Zipf-skewed submit streams (one in every 64 ops a Query)
//    against a sharded ServingService behind the epoll RpcServer.
//    Reported: ops/s, client-observed p50/p99/p999 latency, and the
//    exact reconciliation between client-acked updates and the
//    shards' applied counters.
//  * Overload check — a wedged shard behind a small admission limit
//    must bounce submits with typed kOverloaded verdicts (never queue
//    without bound), and every acked update must still apply once the
//    wedge lifts.
//  * WAL round trip — the same RPC-driven stream with per-shard
//    changelogs attached recovers bit-identical schemas into a fresh
//    service.
//
// `--smoke` shrinks the workload and skips the Google Benchmark
// codec loops; `--json=FILE` writes the BENCH_r1_rpc.json trajectory
// file. Gated metrics are the deterministic reconciliations (request
// vs response mismatches, acked-vs-applied gap, overload accounting
// gap, WAL recovery divergence — all must stay zero) plus the acked
// update count; throughput and latency ride along ungated.
// `--wal-dir=DIR` points the WAL phase at DIR (treated as scratch:
// wiped before use); default is ./bench_r1_wal.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/schema_io.h"
#include "online/trace.h"
#include "rpc/client.h"
#include "rpc/protocol.h"
#include "rpc/server.h"
#include "serving/service.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/zipf.h"

namespace {

using namespace msp;

std::string ParseWalDir(int* argc, char** argv) {
  std::string dir = "bench_r1_wal";
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--wal-dir=", 0) == 0) {
      dir = arg.substr(10);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return dir;
}

// The load phase pins a repair-only policy: replans would make the
// tail measure planner consults on ever-growing instances instead of
// the front door (the WAL phase keeps the drift policy for realism).
rpc::Request MakeCreate(uint64_t req_id, const std::string& key,
                        const std::string& policy = "never") {
  rpc::Request request;
  request.type = rpc::MsgType::kCreateInstance;
  request.req_id = req_id;
  request.key = key;
  request.spec.capacity = 100;
  request.spec.policy.name = policy;
  request.spec.policy.cooldown = 8;
  return request;
}

struct WorkerResult {
  uint64_t accepted = 0;       // updates acked by kOk responses
  uint64_t overloaded = 0;     // kOverloaded verdicts observed
  uint64_t mismatches = 0;     // responses out of order / wrong id
  std::vector<double> latencies_us;
};

// One closed-loop client: Zipf-skewed key choice, mostly submits with
// a Query every 64th op, every response matched against its request.
WorkerResult RunWorker(uint16_t port, const std::vector<std::string>& keys,
                       std::size_t ops, uint64_t seed) {
  WorkerResult result;
  rpc::RpcClient client;
  std::string error;
  if (!client.Connect("127.0.0.1", port, &error)) {
    std::cerr << "R1: worker connect failed: " << error << "\n";
    result.mismatches = ops;  // poison the reconciliation
    return result;
  }
  Rng rng(seed);
  ZipfDistribution zipf(keys.size(), /*s=*/1.1);
  result.latencies_us.reserve(ops);
  for (std::size_t op = 0; op < ops; ++op) {
    const std::string& key = keys[zipf.Sample(&rng) - 1];
    rpc::Request request;
    request.req_id = 1000 + op;
    request.key = key;
    if (op % 64 == 63) {
      request.type = rpc::MsgType::kQuery;
    } else {
      request.type = rpc::MsgType::kSubmit;
      request.updates.push_back(
          online::Update::Add(rng.UniformInRange(1, 40)));
    }
    rpc::Response response;
    Stopwatch watch;
    if (!client.Call(request, &response, &error)) {
      std::cerr << "R1: call failed: " << error << "\n";
      ++result.mismatches;
      break;
    }
    result.latencies_us.push_back(
        static_cast<double>(watch.ElapsedMicros()));
    if (response.req_id != request.req_id) ++result.mismatches;
    switch (response.type) {
      case rpc::MsgType::kOk:
        result.accepted += response.accepted;
        break;
      case rpc::MsgType::kOverloaded:
        ++result.overloaded;
        break;
      case rpc::MsgType::kQueryResult:
        if (!response.found) ++result.mismatches;
        break;
      default:
        ++result.mismatches;
        break;
    }
  }
  return result;
}

struct LoadOutcome {
  uint64_t accepted = 0;
  uint64_t overloaded = 0;
  uint64_t mismatches = 0;
  uint64_t applied = 0;     // shard-side ground truth after drain
  uint64_t rejected = 0;
  uint64_t skipped = 0;
  double seconds = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  uint64_t ops = 0;
};

double PercentileOf(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(rank + 0.5)];
}

LoadOutcome RunLoad(std::size_t connections, std::size_t shards,
                    std::size_t instances, std::size_t ops_per_conn) {
  serving::ServingConfig sconfig;
  sconfig.num_shards = shards;
  serving::ServingService service(sconfig);

  rpc::RpcServerOptions options;
  options.service = &service;
  rpc::RpcServer server(options);
  std::string error;
  LoadOutcome outcome;
  if (!server.Start(&error)) {
    std::cerr << "R1: server start failed: " << error << "\n";
    outcome.mismatches = 1;
    return outcome;
  }

  std::vector<std::string> keys;
  for (std::size_t i = 0; i < instances; ++i) {
    keys.push_back("r1-" + std::to_string(i));
  }
  {
    rpc::RpcClient admin;
    if (!admin.Connect("127.0.0.1", server.port(), &error)) {
      std::cerr << "R1: admin connect failed: " << error << "\n";
      outcome.mismatches = 1;
      return outcome;
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      rpc::Response response;
      if (!admin.Call(MakeCreate(i, keys[i]), &response, &error) ||
          response.type != rpc::MsgType::kOk) {
        std::cerr << "R1: create failed for " << keys[i] << "\n";
        ++outcome.mismatches;
      }
    }
  }

  std::vector<WorkerResult> results(connections);
  Stopwatch watch;
  {
    std::vector<std::thread> workers;
    workers.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c) {
      workers.emplace_back([&, c] {
        results[c] =
            RunWorker(server.port(), keys, ops_per_conn, 7000 + 13 * c);
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  outcome.seconds = watch.ElapsedSeconds();

  server.Shutdown();  // graceful drain: every acked task applies

  std::vector<double> latencies;
  for (const WorkerResult& result : results) {
    outcome.accepted += result.accepted;
    outcome.overloaded += result.overloaded;
    outcome.mismatches += result.mismatches;
    outcome.ops += result.latencies_us.size();
    latencies.insert(latencies.end(), result.latencies_us.begin(),
                     result.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  outcome.p50_us = PercentileOf(latencies, 50.0);
  outcome.p99_us = PercentileOf(latencies, 99.0);
  outcome.p999_us = PercentileOf(latencies, 99.9);

  const serving::ServingStats stats = service.stats();
  outcome.applied = stats.total.updates;
  outcome.rejected = stats.total.rejected;
  outcome.skipped = stats.total.skipped;

  const rpc::RpcServerCounters counters = server.counters();
  if (counters.requests != counters.responses) ++outcome.mismatches;
  if (counters.frame_errors != 0) ++outcome.mismatches;
  if (!service.ValidateAll(&error)) {
    std::cerr << "R1: INVALID serving state: " << error << "\n";
    ++outcome.mismatches;
  }
  return outcome;
}

void PrintLoadTable(bool smoke, benchutil::BenchJson* json) {
  const std::size_t shards = smoke ? 2 : 4;
  const std::size_t instances = smoke ? 4 : 8;
  const std::size_t ops = smoke ? 400 : 3000;
  TablePrinter table("R1: closed-loop RPC load over loopback (" +
                     std::to_string(shards) + " shards, " +
                     std::to_string(instances) + " instances, Zipf 1.1)");
  table.SetHeader({"conns", "ops", "acked", "ops/s", "p50 us", "p99 us",
                   "p999 us", "reconcile gap"});
  std::vector<std::size_t> sweep;
  if (smoke) {
    sweep = {4};
  } else {
    sweep = {1, 2, 4, 8};
  }
  for (const std::size_t conns : sweep) {
    const LoadOutcome outcome = RunLoad(conns, shards, instances, ops);
    // Client acks vs shard ground truth: every acked update must be
    // applied (all adds fit under the capacity), nothing more.
    const uint64_t accounted =
        outcome.applied + outcome.rejected + outcome.skipped;
    const uint64_t gap = accounted > outcome.accepted
                             ? accounted - outcome.accepted
                             : outcome.accepted - accounted;
    const double rate =
        outcome.seconds > 0
            ? static_cast<double>(outcome.ops) / outcome.seconds
            : 0;
    table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(conns)),
                  TablePrinter::Fmt(outcome.ops),
                  TablePrinter::Fmt(outcome.accepted),
                  TablePrinter::Fmt(rate, 0),
                  TablePrinter::Fmt(outcome.p50_us, 1),
                  TablePrinter::Fmt(outcome.p99_us, 1),
                  TablePrinter::Fmt(outcome.p999_us, 1),
                  TablePrinter::Fmt(gap + outcome.mismatches)});
    const std::string key = "load.conns" + std::to_string(conns);
    // Acked counts depend on admission control under machine load, so
    // they ride ungated; the reconcile gap is structurally zero and
    // gates (zero-stays-zero in benchgate).
    json->Add(key + ".acked_updates",
              static_cast<double>(outcome.accepted), "updates", "higher",
              /*gate=*/false);
    json->Add(key + ".reconcile_gap",
              static_cast<double>(gap + outcome.mismatches), "updates");
    json->Add(key + ".ops_per_s", rate, "ops/s", "higher", /*gate=*/false);
    json->Add(key + ".p99_us", outcome.p99_us, "us", "lower",
              /*gate=*/false);
    json->Add(key + ".p999_us", outcome.p999_us, "us", "lower",
              /*gate=*/false);
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: ops/s grows with connections until the event\n"
         "loop or the cores saturate; the reconcile gap (client acks vs\n"
         "shard-applied counters, plus any response mismatch) is exactly\n"
         "0 at every point — acking at enqueue never loses an update.\n\n";
}

void RunOverloadCheck(benchutil::BenchJson* json) {
  serving::ServingConfig sconfig;
  sconfig.num_shards = 1;
  serving::ServingService service(sconfig);
  rpc::RpcServerOptions options;
  options.service = &service;
  options.max_mailbox_depth = 8;
  rpc::RpcServer server(options);
  std::string error;
  uint64_t accepted = 0;
  uint64_t bounced = 0;
  uint64_t gap = 1;
  if (server.Start(&error)) {
    rpc::RpcClient client;
    if (client.Connect("127.0.0.1", server.port(), &error)) {
      rpc::Response response;
      client.Call(MakeCreate(1, "wedged"), &response, &error);
      service.InjectApplyDelayForTest(0, 2000);
      for (uint64_t i = 0; i < 300; ++i) {
        rpc::Request request;
        request.type = rpc::MsgType::kSubmit;
        request.req_id = 10 + i;
        request.key = "wedged";
        request.updates.push_back(online::Update::Add(3));
        if (!client.Call(request, &response, &error)) break;
        if (response.type == rpc::MsgType::kOk) {
          accepted += response.accepted;
        } else if (response.type == rpc::MsgType::kOverloaded) {
          ++bounced;
        }
      }
      service.InjectApplyDelayForTest(0, 0);
    }
    server.Shutdown();
    const uint64_t applied = service.stats().total.updates;
    gap = applied > accepted ? applied - accepted : accepted - applied;
  }
  std::cout << "R1 overload check: acked=" << accepted << " bounced="
            << bounced << " acked-vs-applied gap=" << gap
            << (bounced > 0 && gap == 0 ? "  [ok]\n\n" : "  [FAIL]\n\n");
  json->Add("overload.bounced_seen", bounced > 0 ? 1 : 0, "bool", "higher");
  json->Add("overload.reconcile_gap", static_cast<double>(gap), "updates");
}

void RunWalRoundTrip(const std::string& dir, bool smoke,
                     benchutil::BenchJson* json) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  durability::WalOptions wal;
  wal.dir = dir;
  wal.fsync_every_n = 8;

  const std::size_t kInstances = 2;
  const std::size_t ops = smoke ? 150 : 600;
  std::map<std::string, std::string> live_schemas;
  uint64_t live_applied = 0;
  uint64_t divergence = 1;
  {
    serving::ServingConfig sconfig;
    sconfig.num_shards = 2;
    serving::ServingService service(sconfig);
    std::string error;
    if (!service.AttachWal(wal, &error)) {
      std::cerr << "R1: AttachWal failed: " << error << "\n";
      json->Add("wal.recovery_gap", 1, "instances");
      return;
    }
    rpc::RpcServerOptions options;
    options.service = &service;
    rpc::RpcServer server(options);
    if (!server.Start(&error)) {
      std::cerr << "R1: wal server start failed: " << error << "\n";
      json->Add("wal.recovery_gap", 1, "instances");
      return;
    }
    rpc::RpcClient client;
    client.Connect("127.0.0.1", server.port(), &error);
    Rng rng(99);
    for (std::size_t i = 0; i < kInstances; ++i) {
      rpc::Response response;
      client.Call(MakeCreate(i, "wal-" + std::to_string(i), "drift"),
                  &response, &error);
      for (std::size_t op = 0; op < ops; ++op) {
        rpc::Request request;
        request.type = rpc::MsgType::kSubmit;
        request.req_id = 100 + op;
        request.key = "wal-" + std::to_string(i);
        request.updates.push_back(
            online::Update::Add(rng.UniformInRange(1, 40)));
        client.Call(request, &response, &error);
      }
    }
    server.Shutdown();
    service.ForEachInstance(
        [&](const std::string& key, const online::OnlineAssigner& a) {
          live_schemas[key] = SchemaToText(a.Schema());
          live_applied += a.totals().updates;
        });
  }  // service destruction seals the changelogs

  {
    serving::ServingConfig sconfig;
    sconfig.num_shards = 2;
    serving::ServingService recovered(sconfig);
    durability::WalOptions recover = wal;
    recover.recover = true;
    std::string error;
    if (recovered.AttachWal(recover, &error)) {
      divergence = 0;
      uint64_t recovered_applied = 0;
      std::size_t seen = 0;
      recovered.ForEachInstance(
          [&](const std::string& key, const online::OnlineAssigner& a) {
            ++seen;
            recovered_applied += a.totals().updates;
            auto it = live_schemas.find(key);
            if (it == live_schemas.end() ||
                it->second != SchemaToText(a.Schema())) {
              ++divergence;
            }
          });
      if (seen != live_schemas.size()) ++divergence;
      if (recovered_applied != live_applied) ++divergence;
    } else {
      std::cerr << "R1: recovery failed: " << error << "\n";
    }
  }
  std::cout << "R1 WAL round trip: " << live_schemas.size()
            << " instances, " << live_applied << " applied, recovery "
            << (divergence == 0 ? "bit-identical  [ok]" : "DIVERGED")
            << "\n\n";
  json->Add("wal.recovery_gap", static_cast<double>(divergence),
            "instances");
  std::error_code cleanup;
  std::filesystem::remove_all(dir, cleanup);
}

// Codec hot path: encode+frame+decode of a typical submit, the
// per-request CPU floor under the event loop.
void BM_SubmitCodecRoundTrip(benchmark::State& state) {
  rpc::Request request;
  request.type = rpc::MsgType::kSubmit;
  request.req_id = 7;
  request.key = "bench-key";
  request.updates.push_back(online::Update::Add(17));
  for (auto _ : state) {
    const std::string frame =
        rpc::EncodeFrame(rpc::EncodeRequest(request));
    std::size_t frame_size = 0;
    std::string_view payload;
    std::string error;
    rpc::Request decoded;
    benchmark::DoNotOptimize(rpc::DecodeFrame(frame, &frame_size, &payload,
                                              &error));
    benchmark::DoNotOptimize(
        rpc::DecodeRequest(payload, &decoded, &error));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubmitCodecRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  const std::string wal_dir = ParseWalDir(&argc, argv);
  const benchutil::BenchArgs args = benchutil::ParseBenchArgs(&argc, argv);

  benchutil::BenchJson json("r1_rpc");
  PrintLoadTable(args.smoke, &json);
  RunOverloadCheck(&json);
  RunWalRoundTrip(wal_dir, args.smoke, &json);
  if (benchutil::EmitBenchJson(json, args) != 0) return 1;
  if (!args.smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
