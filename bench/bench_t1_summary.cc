// Experiment T1 — summary of near-optimality across size distributions.
//
// Reconstructs the paper's headline claim: the bin-packing-based
// mapping-schema constructions stay within a small constant factor of
// the instance lower bounds, across equal, uniform, and heavy-tailed
// (Zipf) size distributions, for both reducers and communication.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/a2a.h"
#include "core/bounds.h"
#include "util/table.h"
#include "workload/sizes.h"

namespace {

using namespace msp;
using benchutil::EvaluateA2A;

constexpr InputSize kCapacity = 1'000;

std::vector<InputSize> MakeSizes(const std::string& dist, std::size_t m,
                                 uint64_t seed) {
  if (dist == "equal") return wl::EqualSizes(m, 25);
  if (dist == "uniform") return wl::UniformSizes(m, 1, kCapacity / 2, seed);
  return wl::ZipfSizes(m, 2, kCapacity / 2, 1.2, seed);  // zipf
}

void PrintSummaryTable() {
  TablePrinter table(
      "T1: approximation quality (q = 1000), alg / lower-bound ratios");
  table.SetHeader({"distribution", "m", "algorithm", "reducers", "LB",
                   "z-ratio", "comm", "comm LB", "c-ratio"});
  for (const std::string dist : {"equal", "uniform", "zipf"}) {
    for (std::size_t m : {200u, 1'000u, 4'000u}) {
      const auto sizes = MakeSizes(dist, m, 1'000 + m);
      auto instance = A2AInstance::Create(sizes, kCapacity);
      const A2ALowerBounds lb = A2ALowerBounds::Compute(*instance);

      std::vector<A2AAlgorithm> algorithms = {A2AAlgorithm::kBinPackPairing,
                                              A2AAlgorithm::kBigSmall};
      if (dist == "equal") {
        algorithms.insert(algorithms.begin(), A2AAlgorithm::kEqualGrouping);
      }
      if (m <= 1'000) {
        algorithms.push_back(A2AAlgorithm::kGreedyCover);
      }
      for (A2AAlgorithm algo : algorithms) {
        const auto eval = EvaluateA2A(*instance, lb, algo);
        if (!eval.has_value()) continue;
        table.AddRow({dist, TablePrinter::Fmt(uint64_t{m}),
                      A2AAlgorithmName(algo),
                      TablePrinter::Fmt(eval->reducers),
                      TablePrinter::Fmt(lb.reducers),
                      TablePrinter::Fmt(eval->reducer_ratio, 2),
                      TablePrinter::Fmt(eval->communication),
                      TablePrinter::Fmt(lb.communication),
                      TablePrinter::Fmt(eval->comm_ratio, 2)});
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): z-ratio around 2 or below for the\n"
               "bin-packing constructions; naive baselines are orders of\n"
               "magnitude worse (see F1).\n\n";
}

void BM_SolveA2AAuto(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const auto sizes = MakeSizes("zipf", m, 77);
  auto instance = A2AInstance::Create(sizes, kCapacity);
  for (auto _ : state) {
    auto schema = SolveA2AAuto(*instance);
    benchmark::DoNotOptimize(schema);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * m);
}
BENCHMARK(BM_SolveA2AAuto)->Arg(200)->Arg(1'000)->Arg(4'000);

}  // namespace

int main(int argc, char** argv) {
  PrintSummaryTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
