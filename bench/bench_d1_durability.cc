// Experiment D1 — the durability layer: changelog append throughput
// and crash-recovery time.
//
// Two questions the WAL design trades off:
//
//  * What does group commit buy? Append throughput vs fsync_every_n
//    across record sizes (the record payload scales with the instance
//    key) — fsync_every_n=1 is the write-through floor, larger batches
//    amortize the sync until the codec is the bottleneck.
//  * What does recovery cost? Parse time (checksum walk of the log)
//    and replay time (deterministic re-application into a fresh
//    assigner) as the logged history grows, reported separately —
//    parse scales with bytes, replay with the repair work the log
//    encodes.
//
// `--smoke` shortens the sweeps and skips the Google Benchmark loops;
// the CI Release leg runs it on every push. In smoke and full mode
// alike the recovery sweep differentially verifies each recovered
// state against the live run (schema text + update totals) and the
// process exits non-zero on divergence.
//
// `--json=FILE` writes the BENCH_d1_durability.json trajectory file
// (gated: codec bytes/record and recovery record/byte counts — see
// tools/benchgate.py). Results are mirrored to bench_d1_durability.csv.

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/schema_io.h"
#include "durability/changelog.h"
#include "durability/wal.h"
#include "online/assigner.h"
#include "online/trace.h"
#include "util/csv_writer.h"
#include "util/fs.h"
#include "util/table.h"
#include "util/timer.h"
#include "workload/updates.h"

namespace {

using namespace msp;

// ---------------------------------------------------------------------
// Append throughput.

durability::LogRecord SampleRecord(const std::string& key, uint64_t seq) {
  return durability::LogRecord::Event(
      durability::RecordKind::kApplied, key, seq,
      online::Update::Add(17 + seq % 23));
}

struct AppendResult {
  uint64_t records = 0;
  uint64_t bytes = 0;
  uint64_t fsyncs = 0;
  double seconds = 0.0;
};

AppendResult AppendSweep(std::size_t key_len, uint64_t fsync_every_n,
                         uint64_t records) {
  MemFileSystem fs;
  durability::ChangelogWriterOptions options;
  options.fsync_every_n = fsync_every_n;
  std::string error;
  auto writer =
      durability::ChangelogWriter::Create(&fs, "wal", 1, options, &error);
  const std::string key(key_len, 'k');
  AppendResult result;
  Stopwatch wall;
  for (uint64_t i = 1; i <= records; ++i) {
    writer->Append(SampleRecord(key, i), &error);
  }
  writer->Sync(&error);
  result.seconds = wall.ElapsedSeconds();
  result.records = writer->appended_records();
  result.bytes = writer->bytes_appended();
  result.fsyncs = writer->fsyncs();
  return result;
}

void PrintAppendTable(bool smoke, CsvWriter* csv,
                      benchutil::BenchJson* json) {
  const uint64_t records = smoke ? 20'000 : 200'000;
  TablePrinter table("D1: changelog append throughput (group commit)");
  table.SetHeader({"key bytes", "fsync every", "records", "MB", "fsyncs",
                   "records/s", "MB/s"});
  csv->WriteRow({"table", "key_bytes", "fsync_every_n", "records", "bytes",
                 "fsyncs", "records_per_s", "mb_per_s"});
  for (const std::size_t key_len : {8, 64, 256}) {
    for (const uint64_t fsync_every : {uint64_t{1}, uint64_t{8},
                                       uint64_t{64}, uint64_t{0}}) {
      const AppendResult r = AppendSweep(key_len, fsync_every, records);
      const double rate =
          r.seconds > 0.0 ? static_cast<double>(r.records) / r.seconds : 0.0;
      const double mb = static_cast<double>(r.bytes) / (1024.0 * 1024.0);
      const double mb_rate = r.seconds > 0.0 ? mb / r.seconds : 0.0;
      const std::string every =
          fsync_every == 0 ? "close-only" : TablePrinter::Fmt(fsync_every);
      table.AddRow({TablePrinter::Fmt(key_len), every,
                    TablePrinter::Fmt(r.records), TablePrinter::Fmt(mb, 1),
                    TablePrinter::Fmt(r.fsyncs), TablePrinter::Fmt(rate, 0),
                    TablePrinter::Fmt(mb_rate, 1)});
      csv->WriteRow({"D1-append", std::to_string(key_len), every,
                     std::to_string(r.records), std::to_string(r.bytes),
                     std::to_string(r.fsyncs), TablePrinter::Fmt(rate, 0),
                     TablePrinter::Fmt(mb_rate, 1)});
      if (key_len == 64 && fsync_every == 64) {
        // Encoded bytes per record are a property of the codec, not
        // the machine — gate them so a format bloat fails CI.
        json->Add("append.bytes_per_record_k64",
                  r.records > 0 ? static_cast<double>(r.bytes) /
                                      static_cast<double>(r.records)
                                : 0.0,
                  "bytes");
        json->Add("append.records_per_s_k64_f64", rate, "records/s",
                  "higher", /*gate=*/false);
      }
    }
  }
  table.Print(std::cout);
}

// ---------------------------------------------------------------------
// Recovery time, differentially verified against the live run.

durability::StreamConfig RecoveryStreamConfig(
    const online::UpdateTrace& trace) {
  durability::StreamConfig config;
  config.x2y = trace.x2y;
  config.translate = true;
  config.use_portfolio = false;
  config.capacity = trace.initial_capacity;
  config.policy_spec.name = "drift";
  config.policy_spec.cooldown = 8;
  return config;
}

// Replays `trace` while logging every record (the CLI's --wal-out
// path, inlined) and returns the live end state for verification.
struct LiveRun {
  std::string schema;
  uint64_t updates = 0;
  std::string bytes;  // the changelog image
};

LiveRun LogTrace(const online::UpdateTrace& trace) {
  MemFileSystem fs;
  durability::ChangelogWriterOptions options;
  options.fsync_every_n = 64;
  std::string error;
  auto writer =
      durability::ChangelogWriter::Create(&fs, "wal", 1, options, &error);
  const durability::StreamConfig config = RecoveryStreamConfig(trace);
  online::OnlineAssigner assigner(config.ToOnlineConfig(nullptr));
  std::vector<std::optional<InputId>> live_of_trace;
  uint64_t seq = 0;
  writer->Append(durability::LogRecord::Create("s", 0, config), &error);
  for (const online::Update& raw : trace.updates) {
    online::Update update = raw;
    online::TraceIdTranslator translator(&live_of_trace);
    if (!translator.Translate(&update)) {
      writer->Append(
          durability::LogRecord::Event(durability::RecordKind::kSkipped,
                                       "s", ++seq, update),
          &error);
      continue;
    }
    const online::UpdateResult result = assigner.ApplyDeferred(update);
    if (update.kind == online::UpdateKind::kAddInput) {
      translator.RecordAdd(result.applied ? result.new_id : std::nullopt);
    }
    writer->Append(
        durability::LogRecord::Event(
            result.applied ? durability::RecordKind::kApplied
                           : durability::RecordKind::kRejected,
            "s", ++seq, update),
        &error);
    if (result.applied && assigner.pending_decision_updates() >= 8) {
      assigner.PolicyCheckpoint();
      writer->Append(durability::LogRecord::Checkpoint("s", seq), &error);
    }
  }
  writer->Sync(&error);
  LiveRun run;
  run.schema = SchemaToText(assigner.Schema());
  run.updates = assigner.totals().updates;
  run.bytes = fs.WrittenContents("wal");
  return run;
}

// Returns the number of recovery sweeps that diverged from the live
// state.
int PrintRecoveryTable(bool smoke, CsvWriter* csv,
                       benchutil::BenchJson* json) {
  TablePrinter table("D1: crash-recovery time (parse + replay)");
  table.SetHeader({"trace steps", "records", "KB", "parse ms", "replay ms",
                   "replayed rec/s", "identical"});
  csv->WriteRow({"table", "steps", "records", "bytes", "parse_ms",
                 "replay_ms", "replayed_records_per_s", "identical"});
  int failures = 0;
  std::vector<std::size_t> sweeps = smoke
                                        ? std::vector<std::size_t>{60, 200}
                                        : std::vector<std::size_t>{200, 800,
                                                                   3200};
  for (const std::size_t steps : sweeps) {
    wl::TraceConfig shape;
    shape.initial_inputs = 24;
    shape.steps = steps;
    shape.seed = 81;
    const online::UpdateTrace trace = wl::GenerateTrace(shape);
    const LiveRun live = LogTrace(trace);

    Stopwatch parse_wall;
    std::string error;
    const auto contents = durability::ReadChangelog(live.bytes, &error);
    const double parse_ms = parse_wall.ElapsedSeconds() * 1e3;

    double replay_ms = 0.0;
    bool identical = false;
    std::size_t records = 0;
    if (contents.has_value()) {
      records = contents->records.size();
      Stopwatch replay_wall;
      std::map<std::string, durability::StreamState> streams;
      const bool ok = durability::ReplayRecords(contents->records, &streams,
                                                nullptr, nullptr, &error);
      replay_ms = replay_wall.ElapsedSeconds() * 1e3;
      if (ok) {
        const durability::StreamState& stream = streams.at("s");
        identical = SchemaToText(stream.assigner->Schema()) == live.schema &&
                    stream.assigner->totals().updates == live.updates;
      }
    }
    if (!identical) {
      ++failures;
      std::cout << "RECOVERY DIVERGED (steps=" << steps << "): " << error
                << "\n";
    }
    const double total_s = (parse_ms + replay_ms) / 1e3;
    const double rate =
        total_s > 0.0 ? static_cast<double>(records) / total_s : 0.0;
    table.AddRow({TablePrinter::Fmt(steps), TablePrinter::Fmt(records),
                  TablePrinter::Fmt(live.bytes.size() / 1024.0, 1),
                  TablePrinter::Fmt(parse_ms, 2),
                  TablePrinter::Fmt(replay_ms, 2),
                  TablePrinter::Fmt(rate, 0), identical ? "yes" : "NO"});
    csv->WriteRow({"D1-recovery", std::to_string(steps),
                   std::to_string(records),
                   std::to_string(live.bytes.size()),
                   TablePrinter::Fmt(parse_ms, 2),
                   TablePrinter::Fmt(replay_ms, 2),
                   TablePrinter::Fmt(rate, 0), identical ? "yes" : "NO"});
    const std::string key = "recovery.steps" + std::to_string(steps);
    json->Add(key + ".records", static_cast<double>(records), "records");
    json->Add(key + ".log_bytes", static_cast<double>(live.bytes.size()),
              "bytes");
    json->Add(key + ".replay_ms", replay_ms, "ms", "lower",
              /*gate=*/false);
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: append throughput rises with fsync_every_n and\n"
         "falls with record size; close-only is the codec ceiling. Parse\n"
         "time scales with log bytes (one checksum walk), replay with the\n"
         "repair work the records encode — recovery is replay-dominated,\n"
         "which is what snapshot rotation bounds.\n\n";
  return failures;
}

void BM_ChangelogAppend(benchmark::State& state) {
  const auto fsync_every = static_cast<uint64_t>(state.range(0));
  const std::string key(32, 'k');
  MemFileSystem fs;
  durability::ChangelogWriterOptions options;
  options.fsync_every_n = fsync_every;
  std::string error;
  auto writer =
      durability::ChangelogWriter::Create(&fs, "wal", 1, options, &error);
  uint64_t seq = 0;
  for (auto _ : state) {
    const bool ok = writer->Append(SampleRecord(key, ++seq), &error);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ChangelogAppend)->Arg(1)->Arg(8)->Arg(64);

void BM_Recovery(benchmark::State& state) {
  wl::TraceConfig shape;
  shape.initial_inputs = 24;
  shape.steps = static_cast<std::size_t>(state.range(0));
  shape.seed = 82;
  const LiveRun live = LogTrace(wl::GenerateTrace(shape));
  for (auto _ : state) {
    std::string error;
    const auto contents = durability::ReadChangelog(live.bytes, &error);
    std::map<std::string, durability::StreamState> streams;
    const bool ok = durability::ReplayRecords(contents->records, &streams,
                                              nullptr, nullptr, &error);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Recovery)->Arg(200)->Arg(800);

}  // namespace

int main(int argc, char** argv) {
  const benchutil::BenchArgs args = benchutil::ParseBenchArgs(&argc, argv);

  CsvWriter csv("bench_d1_durability.csv");
  benchutil::BenchJson json("d1_durability");
  PrintAppendTable(args.smoke, &csv, &json);
  const int failures = PrintRecoveryTable(args.smoke, &csv, &json);
  if (benchutil::EmitBenchJson(json, args) != 0) return 1;
  if (failures > 0) return 1;
  if (!args.smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
