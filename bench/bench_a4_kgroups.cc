// Ablation A4 — bins-per-reducer k in the generalized covering
// construction: pack bins of q/k, cover bin pairs with k-cliques.
//
// Expected shape: when inputs are small relative to q, growing k
// reduces BOTH reducers and communication (each reducer covers
// k/(k-1)-fold denser pair mass), converging toward the pair-mass
// lower bound — the library's concrete version of the paper's "larger
// reducers cover more pairs" observation.

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/a2a.h"
#include "core/bounds.h"
#include "core/instance.h"
#include "core/schema.h"
#include "core/validate.h"
#include "util/check.h"
#include "util/table.h"
#include "workload/sizes.h"

namespace {

using namespace msp;

void PrintKGroupsTable() {
  const auto sizes = wl::UniformSizes(1'200, 1, 12, 717);
  auto instance = A2AInstance::Create(sizes, 120);
  const A2ALowerBounds lb = A2ALowerBounds::Compute(*instance);

  TablePrinter table(
      "A4: bins-per-reducer sweep (m = 1200, sizes 1..12, q = 120)");
  table.SetHeader({"k", "bin cap q/k", "reducers", "z/LB", "comm",
                   "repl rate", "max load"});
  for (int k = 2; k <= 8; ++k) {
    const auto schema = SolveA2ABinPackKGroups(*instance, k);
    if (!schema.has_value()) {
      table.AddRow({TablePrinter::Fmt(uint64_t(k)),
                    TablePrinter::Fmt(uint64_t(120 / k)), "-", "-", "-", "-",
                    "-"});
      continue;
    }
    MSP_CHECK(ValidateA2A(*instance, *schema).ok);
    const SchemaStats stats = SchemaStats::Compute(*instance, *schema);
    table.AddRow({TablePrinter::Fmt(uint64_t(k)),
                  TablePrinter::Fmt(uint64_t(120 / k)),
                  TablePrinter::Fmt(stats.num_reducers),
                  TablePrinter::Fmt(
                      static_cast<double>(stats.num_reducers) /
                          static_cast<double>(lb.reducers),
                      2),
                  TablePrinter::Fmt(stats.communication_cost),
                  TablePrinter::Fmt(stats.replication_rate, 2),
                  TablePrinter::Fmt(stats.max_load)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: z/LB falls from ~2 (k = 2) toward ~1.2 as\n"
               "k grows, with communication falling in step, until bin\n"
               "granularity (q/k vs max input size) cuts the sweep off.\n\n";
}

void BM_KGroups(benchmark::State& state) {
  const auto sizes = wl::UniformSizes(1'200, 1, 12, 717);
  auto instance = A2AInstance::Create(sizes, 120);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto schema = SolveA2ABinPackKGroups(*instance, k);
    benchmark::DoNotOptimize(schema);
  }
}
BENCHMARK(BM_KGroups)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintKGroupsTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
