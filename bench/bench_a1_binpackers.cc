// Ablation A1 — the bin packer inside the schema constructions.
//
// The paper's algorithms are parametric in the packing heuristic. This
// ablation measures how NF/FF/BF/WF/FFD/BFD propagate into the final
// schema size: z = x(x-1)/2 amplifies every extra bin quadratically,
// so decreasing-order packers (FFD/BFD) matter more here than in
// ordinary bin packing.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "binpack/algorithms.h"
#include "binpack/bounds.h"
#include "core/a2a.h"
#include "core/bounds.h"
#include "util/table.h"
#include "workload/sizes.h"

namespace {

using namespace msp;
using benchutil::EvaluateA2A;

void PrintAblation(const std::string& dist,
                   const std::vector<InputSize>& sizes, InputSize q) {
  auto instance = A2AInstance::Create(sizes, q);
  const A2ALowerBounds lb = A2ALowerBounds::Compute(*instance);
  const uint64_t bin_lb = bp::LowerBoundL2(sizes, q / 2);

  TablePrinter table("A1: bin packer ablation, " + dist +
                     " sizes (m = 2000, q = " +
                     TablePrinter::Fmt(uint64_t{q}) + ")");
  table.SetHeader({"packer", "bins @ q/2", "bin LB", "schema z", "z LB",
                   "z-ratio", "comm"});
  for (bp::Algorithm packer : bp::kAllAlgorithms) {
    const bp::Packing packing = bp::Pack(sizes, q / 2, packer);
    A2AOptions options;
    options.bin_packer = packer;
    const auto eval =
        EvaluateA2A(*instance, lb, A2AAlgorithm::kBinPackPairing, options);
    if (!eval.has_value()) continue;
    table.AddRow({bp::AlgorithmName(packer),
                  TablePrinter::Fmt(uint64_t{packing.num_bins()}),
                  TablePrinter::Fmt(bin_lb),
                  TablePrinter::Fmt(eval->reducers),
                  TablePrinter::Fmt(lb.reducers),
                  TablePrinter::Fmt(eval->reducer_ratio, 2),
                  TablePrinter::Fmt(eval->communication)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void BM_PackOnly(benchmark::State& state) {
  const auto sizes = wl::ZipfSizes(2'000, 2, 500, 1.2, 55);
  const bp::Algorithm packer =
      bp::kAllAlgorithms[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(bp::AlgorithmName(packer));
  for (auto _ : state) {
    auto packing = bp::Pack(sizes, 500, packer);
    benchmark::DoNotOptimize(packing);
  }
}
BENCHMARK(BM_PackOnly)->DenseRange(0, 5);

}  // namespace

int main(int argc, char** argv) {
  PrintAblation("uniform", wl::UniformSizes(2'000, 1, 500, 54), 1'000);
  PrintAblation("zipf", wl::ZipfSizes(2'000, 2, 500, 1.2, 55), 1'000);
  std::cout << "Expected shape: FFD/BFD produce the fewest bins, and the\n"
               "quadratic pairing amplifies the difference; NF is the\n"
               "worst by a clear margin.\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
