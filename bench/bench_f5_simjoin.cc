// Experiment F5 — similarity join end to end: coverage, communication
// and parallelism as the reducer capacity shrinks (tradeoff (ii)).
//
// Expected shape: every capacity produces the exact naive result;
// smaller q yields more reducers whose pair-comparison work spreads
// over workers (LPT makespan drops), while shuffled bytes grow.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <vector>

#include "join/similarity_join.h"
#include "mapreduce/metrics.h"
#include "util/math_util.h"
#include "util/table.h"
#include "workload/documents.h"

namespace {

using namespace msp;

std::vector<wl::Document> MakeCorpus() {
  wl::DocumentConfig config;
  config.count = 220;
  config.vocabulary = 3'000;
  config.min_tokens = 4;
  config.max_tokens = 96;
  config.length_skew = 1.0;
  config.seed = 99;
  return wl::MakeDocuments(config);
}

// Per-reducer cost model: number of owned pair comparisons.
std::vector<uint64_t> ReducerPairCosts(const mr::JobMetrics& metrics) {
  // Bytes delivered are proportional to tokens held; pairs ~ load^2.
  std::vector<uint64_t> costs;
  for (uint64_t bytes : metrics.reducer_bytes) {
    if (bytes > 0) costs.push_back(bytes * bytes);
  }
  return costs;
}

void PrintSimJoinTable() {
  const auto docs = MakeCorpus();
  const auto naive = join::SimilarityJoinNaive(docs, 0.2);

  TablePrinter table(
      "F5: similarity join, 220 documents, threshold 0.2, capacity sweep");
  table.SetHeader({"q (tokens)", "reducers", "comparisons", "shuffle bytes",
                   "makespan speedup w=16", "exact result"});
  for (InputSize q : {200u, 400u, 800u, 1'600u, 6'400u, 100'000u}) {
    join::SimilarityJoinConfig config;
    config.threshold = 0.2;
    config.capacity = q;
    const auto result = join::SimilarityJoinMapReduce(docs, config);
    if (!result.has_value()) {
      table.AddRow({TablePrinter::Fmt(uint64_t{q}), "-", "-", "-", "-",
                    "no schema"});
      continue;
    }
    const auto costs = ReducerPairCosts(result->metrics);
    const uint64_t serial = mr::LptMakespan(costs, 1);
    const uint64_t parallel = mr::LptMakespan(costs, 16);
    table.AddRow(
        {TablePrinter::Fmt(uint64_t{q}),
         TablePrinter::Fmt(result->schema_stats.num_reducers),
         TablePrinter::Fmt(result->comparisons),
         TablePrinter::Fmt(result->metrics.shuffle_bytes),
         TablePrinter::Fmt(
             parallel == 0 ? 0.0
                           : static_cast<double>(serial) /
                                 static_cast<double>(parallel),
             2),
         result->pairs == naive ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: the single-reducer regime (huge q) has\n"
               "speedup 1 (no parallelism); shrinking q unlocks near-ideal\n"
               "speedup at the price of shuffled bytes — tradeoff (ii) and\n"
               "(iii) of the paper. Comparisons stay exactly C(m,2).\n\n";
}

void BM_SimilarityJoin(benchmark::State& state) {
  const auto docs = MakeCorpus();
  join::SimilarityJoinConfig config;
  config.threshold = 0.2;
  config.capacity = static_cast<InputSize>(state.range(0));
  config.engine.num_workers = 2;
  for (auto _ : state) {
    auto result = join::SimilarityJoinMapReduce(docs, config);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SimilarityJoin)->Arg(400)->Arg(1'600)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSimJoinTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
