// Experiment O1 — the online assignment subsystem: per-update latency,
// churn, and quality gap of three strategies replaying the same seeded
// update traces (arrivals, departures, resizes, capacity retunes):
//
//  * incremental — local repair + drift-policy re-plans deployed via
//    the min-move delta (the online subsystem's intended mode);
//  * replan-every — a full re-plan after every update, deployed from
//    scratch (the offline "just re-run the paper's algorithm" answer);
//  * plan-once — pure local repair, never re-planning.
//
// Expected shape: incremental moves orders of magnitude fewer bytes
// than replan-every while staying within the policy's drift bound of
// the fresh plan's reducer count; plan-once is cheapest per update but
// its quality gap grows with trace length.
//
// Results are mirrored to bench_o1_online.csv in the working
// directory.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "online/assigner.h"
#include "online/policy.h"
#include "online/trace.h"
#include "util/csv_writer.h"
#include "util/table.h"
#include "util/timer.h"
#include "workload/updates.h"

namespace {

using namespace msp;

struct TraceShape {
  std::string name;
  wl::TraceConfig config;
};

std::vector<TraceShape> MakeShapes() {
  wl::TraceConfig a2a_small;
  a2a_small.initial_inputs = 40;
  a2a_small.steps = 400;
  a2a_small.seed = 31;
  wl::TraceConfig a2a_large = a2a_small;
  a2a_large.initial_inputs = 200;
  a2a_large.steps = 600;
  a2a_large.seed = 32;
  wl::TraceConfig x2y = a2a_small;
  x2y.x2y = true;
  x2y.initial_inputs = 80;
  x2y.steps = 400;
  x2y.seed = 33;
  return {
      {"a2a m0=40 steps=400", a2a_small},
      {"a2a m0=200 steps=600", a2a_large},
      {"x2y m0=80 steps=400", x2y},
  };
}

struct Strategy {
  std::string name;
  std::shared_ptr<online::ReplanPolicy> policy;
  bool full_reassign = false;
};

std::vector<Strategy> MakeStrategies() {
  return {
      {"incremental",
       std::make_shared<online::DriftThresholdPolicy>(1.5, 2.0, 128), false},
      {"replan-every", std::make_shared<online::AlwaysReplanPolicy>(), true},
      {"plan-once", std::make_shared<online::NeverReplanPolicy>(), false},
  };
}

struct ReplayOutcome {
  double mean_update_us = 0;
  online::OnlineTotals totals;
  online::QualitySnapshot quality;
};

ReplayOutcome Replay(const online::UpdateTrace& trace,
                     const Strategy& strategy) {
  online::OnlineConfig config;
  config.x2y = trace.x2y;
  config.capacity = trace.initial_capacity;
  config.policy = strategy.policy;
  config.full_reassign_on_replan = strategy.full_reassign;
  config.plan_options.use_portfolio = false;
  online::OnlineAssigner assigner(config);
  Stopwatch watch;
  for (const online::Update& update : trace.updates) {
    assigner.Apply(update);
  }
  ReplayOutcome outcome;
  outcome.mean_update_us =
      static_cast<double>(watch.ElapsedMicros()) /
      static_cast<double>(trace.updates.size());
  outcome.totals = assigner.totals();
  outcome.quality = assigner.Quality();
  return outcome;
}

void PrintComparisonTable(CsvWriter* csv) {
  TablePrinter table(
      "O1: online strategies — latency, churn, and quality per trace");
  table.SetHeader({"trace", "strategy", "us/update", "inputs moved",
                   "bytes moved", "replans", "z", "z/LB"});
  csv->WriteRow({"table", "trace", "strategy", "us_per_update",
                 "inputs_moved", "bytes_moved", "replans", "reducers",
                 "reducers_over_lb"});
  for (const TraceShape& shape : MakeShapes()) {
    const online::UpdateTrace trace = wl::GenerateTrace(shape.config);
    for (const Strategy& strategy : MakeStrategies()) {
      const ReplayOutcome outcome = Replay(trace, strategy);
      const double gap =
          outcome.quality.lb_reducers == 0
              ? 0.0
              : static_cast<double>(outcome.quality.live_reducers) /
                    static_cast<double>(outcome.quality.lb_reducers);
      table.AddRow({shape.name, strategy.name,
                    TablePrinter::Fmt(outcome.mean_update_us, 1),
                    TablePrinter::Fmt(outcome.totals.churn.inputs_moved),
                    TablePrinter::Fmt(outcome.totals.churn.bytes_moved),
                    TablePrinter::Fmt(outcome.totals.replans),
                    TablePrinter::Fmt(outcome.quality.live_reducers),
                    TablePrinter::Fmt(gap)});
      csv->WriteRow(
          {"O1", shape.name, strategy.name,
           TablePrinter::Fmt(outcome.mean_update_us, 1),
           std::to_string(outcome.totals.churn.inputs_moved),
           std::to_string(outcome.totals.churn.bytes_moved),
           std::to_string(outcome.totals.replans),
           std::to_string(outcome.quality.live_reducers),
           TablePrinter::Fmt(gap)});
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: incremental moves far fewer inputs/bytes than\n"
         "replan-every (which rebuilds the assignment each update) while\n"
         "keeping z within the drift bound; plan-once never replans, so\n"
         "its z/LB gap is the largest and grows with the trace.\n\n";
}

void BM_IncrementalUpdate(benchmark::State& state) {
  wl::TraceConfig config;
  config.initial_inputs = static_cast<std::size_t>(state.range(0));
  config.steps = 200;
  config.seed = 41;
  const online::UpdateTrace trace = wl::GenerateTrace(config);
  for (auto _ : state) {
    online::OnlineConfig online_config;
    online_config.capacity = trace.initial_capacity;
    online_config.policy =
        std::make_shared<online::DriftThresholdPolicy>(1.5, 2.0, 128);
    online_config.plan_options.use_portfolio = false;
    online::OnlineAssigner assigner(online_config);
    for (const online::Update& update : trace.updates) {
      auto result = assigner.Apply(update);
      benchmark::DoNotOptimize(result);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.updates.size()));
}
BENCHMARK(BM_IncrementalUpdate)->Arg(40)->Arg(200);

void BM_ReplanEveryUpdate(benchmark::State& state) {
  wl::TraceConfig config;
  config.initial_inputs = static_cast<std::size_t>(state.range(0));
  config.steps = 200;
  config.seed = 42;
  const online::UpdateTrace trace = wl::GenerateTrace(config);
  for (auto _ : state) {
    online::OnlineConfig online_config;
    online_config.capacity = trace.initial_capacity;
    online_config.policy = std::make_shared<online::AlwaysReplanPolicy>();
    online_config.full_reassign_on_replan = true;
    online_config.plan_options.use_portfolio = false;
    online::OnlineAssigner assigner(online_config);
    for (const online::Update& update : trace.updates) {
      auto result = assigner.Apply(update);
      benchmark::DoNotOptimize(result);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.updates.size()));
}
BENCHMARK(BM_ReplanEveryUpdate)->Arg(40)->Arg(200);

void BM_MinMoveDelta(benchmark::State& state) {
  // Delta between two fresh plans of neighboring instances — the cost
  // of the escalation path's bookkeeping.
  wl::TraceConfig config;
  config.initial_inputs = static_cast<std::size_t>(state.range(0));
  config.steps = 1;
  config.seed = 43;
  const online::UpdateTrace trace = wl::GenerateTrace(config);
  online::OnlineConfig online_config;
  online_config.capacity = trace.initial_capacity;
  online_config.policy = std::make_shared<online::NeverReplanPolicy>();
  online::OnlineAssigner assigner(online_config);
  for (const online::Update& update : trace.updates) assigner.Apply(update);
  const MappingSchema schema = assigner.Schema();
  std::vector<InputSize> sizes;
  for (InputId id = 0; id < trace.updates.size(); ++id) {
    sizes.push_back(assigner.is_alive(id) ? assigner.size_of(id) : 1);
  }
  for (auto _ : state) {
    auto delta = online::MinMoveDelta(sizes, schema, schema);
    benchmark::DoNotOptimize(delta);
  }
}
BENCHMARK(BM_MinMoveDelta)->Arg(100)->Arg(400);

}  // namespace

int main(int argc, char** argv) {
  CsvWriter csv("bench_o1_online.csv");
  PrintComparisonTable(&csv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
