// Experiment O1 — the online assignment subsystem: per-update latency,
// churn, and quality gap of three strategies replaying the same seeded
// update traces (arrivals, departures, resizes, capacity retunes):
//
//  * incremental — local repair + drift-policy re-plans deployed via
//    the min-move delta (the online subsystem's intended mode);
//  * replan-every — a full re-plan after every update, deployed from
//    scratch (the offline "just re-run the paper's algorithm" answer);
//  * plan-once — pure local repair, never re-planning.
//
// Expected shape: incremental moves orders of magnitude fewer bytes
// than replan-every while staying within the policy's drift bound of
// the fresh plan's reducer count; plan-once is cheapest per update but
// its quality gap grows with trace length. Latency is reported as
// mean/p50/p99 so tail effects of the hot-path layout are visible.
//
// A second table isolates the LiveState pair-coverage hot path at
// m >= 10^4 alive inputs: a clique-cover schema over 10,200 equal
// inputs is bulk-seeded, then remove / shrink / regrow ops (each a
// storm of coverage decrements or lookups) are timed under the dense
// triangular backend vs the legacy unordered_map baseline.
//
// `--smoke` shortens every trace, skips the m >= 10^4 sweep and the
// Google Benchmark loops; `--json=FILE` writes the BENCH_o1_online.json
// trajectory file whose gated metrics are the deterministic churn and
// quality series (see tools/benchgate.py). Results are mirrored to
// bench_o1_online.csv in the working directory.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/schema.h"
#include "obs/alloc.h"
#include "obs/metrics.h"
#include "online/assigner.h"
#include "online/coverage.h"
#include "online/policy.h"
#include "online/repair.h"
#include "online/trace.h"
#include "util/csv_writer.h"
#include "util/summary_stats.h"
#include "util/table.h"
#include "util/timer.h"
#include "workload/updates.h"

namespace {

using namespace msp;

struct TraceShape {
  std::string name;
  std::string key;  // metric-name prefix in the bench JSON
  wl::TraceConfig config;
};

// Smoke shortens every trace (same shapes, same seeds) so the CI leg
// stays fast; the committed BENCH_ baselines are smoke-generated, so
// gated metrics compare like with like.
std::vector<TraceShape> MakeShapes(bool smoke) {
  wl::TraceConfig a2a_small;
  a2a_small.initial_inputs = 40;
  a2a_small.steps = smoke ? 150 : 400;
  a2a_small.seed = 31;
  wl::TraceConfig a2a_large = a2a_small;
  a2a_large.initial_inputs = 200;
  a2a_large.steps = smoke ? 200 : 600;
  a2a_large.seed = 32;
  wl::TraceConfig x2y = a2a_small;
  x2y.x2y = true;
  x2y.initial_inputs = 80;
  x2y.steps = smoke ? 150 : 400;
  x2y.seed = 33;
  return {
      {"a2a m0=40", "a2a_m40", a2a_small},
      {"a2a m0=200", "a2a_m200", a2a_large},
      {"x2y m0=80", "x2y_m80", x2y},
  };
}

struct Strategy {
  std::string name;
  std::shared_ptr<online::ReplanPolicy> policy;
  bool full_reassign = false;
};

std::vector<Strategy> MakeStrategies() {
  return {
      {"incremental",
       std::make_shared<online::DriftThresholdPolicy>(1.5, 2.0, 128), false},
      {"replan-every", std::make_shared<online::AlwaysReplanPolicy>(), true},
      {"plan-once", std::make_shared<online::NeverReplanPolicy>(), false},
  };
}

struct ReplayOutcome {
  double mean_update_us = 0;
  double p50_update_us = 0;
  double p99_update_us = 0;
  online::OnlineTotals totals;
  online::QualitySnapshot quality;
};

ReplayOutcome Replay(const online::UpdateTrace& trace,
                     const Strategy& strategy) {
  online::OnlineConfig config;
  config.x2y = trace.x2y;
  config.capacity = trace.initial_capacity;
  config.policy = strategy.policy;
  config.full_reassign_on_replan = strategy.full_reassign;
  config.plan_options.use_portfolio = false;
  online::OnlineAssigner assigner(config);
  std::vector<double> update_us;
  update_us.reserve(trace.updates.size());
  for (const online::Update& update : trace.updates) {
    Stopwatch watch;
    assigner.Apply(update);
    update_us.push_back(static_cast<double>(watch.ElapsedMicros()));
  }
  ReplayOutcome outcome;
  const SummaryStats latency = SummaryStats::Compute(update_us);
  outcome.mean_update_us = latency.mean();
  outcome.p50_update_us = latency.Percentile(50.0);
  outcome.p99_update_us = latency.Percentile(99.0);
  outcome.totals = assigner.totals();
  outcome.quality = assigner.Quality();
  return outcome;
}

void PrintComparisonTable(bool smoke, CsvWriter* csv,
                          benchutil::BenchJson* json) {
  TablePrinter table(
      "O1: online strategies — latency, churn, and quality per trace");
  table.SetHeader({"trace", "strategy", "us/update", "p50 us", "p99 us",
                   "inputs moved", "bytes moved", "replans", "z", "z/LB"});
  csv->WriteRow({"table", "trace", "strategy", "us_per_update", "p50_us",
                 "p99_us", "inputs_moved", "bytes_moved", "replans",
                 "reducers", "reducers_over_lb"});
  for (const TraceShape& shape : MakeShapes(smoke)) {
    const online::UpdateTrace trace = wl::GenerateTrace(shape.config);
    for (const Strategy& strategy : MakeStrategies()) {
      const ReplayOutcome outcome = Replay(trace, strategy);
      const double gap =
          outcome.quality.lb_reducers == 0
              ? 0.0
              : static_cast<double>(outcome.quality.live_reducers) /
                    static_cast<double>(outcome.quality.lb_reducers);
      table.AddRow({shape.name, strategy.name,
                    TablePrinter::Fmt(outcome.mean_update_us, 1),
                    TablePrinter::Fmt(outcome.p50_update_us, 1),
                    TablePrinter::Fmt(outcome.p99_update_us, 1),
                    TablePrinter::Fmt(outcome.totals.churn.inputs_moved),
                    TablePrinter::Fmt(outcome.totals.churn.bytes_moved),
                    TablePrinter::Fmt(outcome.totals.replans),
                    TablePrinter::Fmt(outcome.quality.live_reducers),
                    TablePrinter::Fmt(gap)});
      csv->WriteRow(
          {"O1", shape.name, strategy.name,
           TablePrinter::Fmt(outcome.mean_update_us, 1),
           TablePrinter::Fmt(outcome.p50_update_us, 1),
           TablePrinter::Fmt(outcome.p99_update_us, 1),
           std::to_string(outcome.totals.churn.inputs_moved),
           std::to_string(outcome.totals.churn.bytes_moved),
           std::to_string(outcome.totals.replans),
           std::to_string(outcome.quality.live_reducers),
           TablePrinter::Fmt(gap)});
      // Churn and quality are fully deterministic (seeded traces, no
      // threads) — gated; latency is trajectory-only.
      const std::string key = shape.key + "." + strategy.name;
      json->Add(key + ".bytes_moved",
                static_cast<double>(outcome.totals.churn.bytes_moved),
                "bytes");
      json->Add(key + ".inputs_moved",
                static_cast<double>(outcome.totals.churn.inputs_moved),
                "inputs");
      json->Add(key + ".replans",
                static_cast<double>(outcome.totals.replans), "replans");
      json->Add(key + ".reducers",
                static_cast<double>(outcome.quality.live_reducers),
                "reducers");
      json->Add(key + ".mean_update_us", outcome.mean_update_us, "us",
                "lower", /*gate=*/false);
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: incremental moves far fewer inputs/bytes than\n"
         "replan-every (which rebuilds the assignment each update) while\n"
         "keeping z within the drift bound; plan-once never replans, so\n"
         "its z/LB gap is the largest and grows with the trace.\n\n";
}

// --- O1c: steady-state allocation accounting of the repair path ---
//
// A warmed-up assigner oscillates the sizes of eight fixed inputs: the
// id space, the alive set, and the load scale stay put while every
// update still repairs (evictions, re-covers, reducer churn). In this
// regime the pooled storage must perform literally zero heap
// allocations — the gated metric's baseline is 0 and benchgate's
// zero-stays-zero rule holds it there — while the heap baseline's
// count on the identical window shows what the pool saves. Under
// sanitizer builds the counting allocator is interposed away and both
// counts read 0; the committed baselines come from plain builds.

struct SteadyAllocOutcome {
  uint64_t allocs = 0;
  uint64_t alloc_bytes = 0;
  double mean_update_us = 0;
};

SteadyAllocOutcome RunSteadyAllocWindow(online::RepairStorage storage) {
  wl::TraceConfig shape;
  shape.initial_inputs = 40;
  shape.steps = 300;
  shape.seed = 34;
  const online::UpdateTrace trace = wl::GenerateTrace(shape);

  obs::Registry registry;
  online::OnlineConfig config;
  config.capacity = trace.initial_capacity;
  config.policy_spec.name = "never";
  config.repair_storage = storage;
  config.metrics = &registry;
  online::OnlineAssigner assigner(config);
  std::vector<std::optional<InputId>> live_of_trace;
  online::TraceIdTranslator translator(&live_of_trace);
  for (const online::Update& update : trace.updates) {
    online::Update live = update;
    if (!translator.Translate(&live)) continue;
    const auto result = assigner.ApplyDeferred(live);
    if (live.kind == online::UpdateKind::kAddInput) {
      translator.RecordAdd(result.applied ? result.new_id : std::nullopt);
    }
  }

  std::vector<InputId> ids(assigner.live_state().alive_ids.begin(),
                           assigner.live_state().alive_ids.end());
  std::sort(ids.begin(), ids.end());
  ids.resize(std::min<std::size_t>(ids.size(), 8));
  const auto oscillate = [&](std::size_t cycles) {
    for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
      for (const InputId id : ids) {
        assigner.ApplyDeferred(
            online::Update::Resize(id, (cycle % 2 == 0) ? 3 : 2));
      }
    }
    return cycles * ids.size();
  };
  oscillate(20);  // reach the oscillation's high-water marks

  obs::Counter* allocs = registry.counter("online.allocs_total");
  obs::Counter* alloc_bytes = registry.counter("online.alloc_bytes_total");
  SteadyAllocOutcome outcome;
  const uint64_t allocs_before = allocs->value();
  const uint64_t bytes_before = alloc_bytes->value();
  Stopwatch watch;
  const std::size_t updates = oscillate(20);
  outcome.mean_update_us = watch.ElapsedSeconds() * 1e6 /
                           static_cast<double>(updates);
  outcome.allocs = allocs->value() - allocs_before;
  outcome.alloc_bytes = alloc_bytes->value() - bytes_before;
  return outcome;
}

void PrintSteadyAllocTable(CsvWriter* csv, benchutil::BenchJson* json) {
  TablePrinter table(
      "O1c: repair-path heap traffic over a 160-update steady-state "
      "window");
  table.SetHeader({"storage", "allocs", "alloc bytes", "us/update"});
  csv->WriteRow({"table", "storage", "allocs", "alloc_bytes",
                 "us_per_update"});
  const struct {
    const char* name;
    online::RepairStorage storage;
  } modes[] = {
      {"pooled", online::RepairStorage::kPooled},
      {"heap (baseline)", online::RepairStorage::kHeap},
  };
  for (const auto& mode : modes) {
    const SteadyAllocOutcome outcome = RunSteadyAllocWindow(mode.storage);
    table.AddRow({mode.name, TablePrinter::Fmt(outcome.allocs),
                  TablePrinter::Fmt(outcome.alloc_bytes),
                  TablePrinter::Fmt(outcome.mean_update_us, 2)});
    csv->WriteRow({"O1c", mode.name, std::to_string(outcome.allocs),
                   std::to_string(outcome.alloc_bytes),
                   TablePrinter::Fmt(outcome.mean_update_us, 2)});
  }
  // Gate only the pooled count: its baseline is 0, and benchgate holds
  // zero-baseline metrics at exactly zero. The heap series is
  // allocator-dependent, so it rides as trajectory context.
  json->Add("steady.pooled.allocs",
            static_cast<double>(
                RunSteadyAllocWindow(online::RepairStorage::kPooled).allocs),
            "allocs");
  json->Add("steady.heap.allocs",
            static_cast<double>(
                RunSteadyAllocWindow(online::RepairStorage::kHeap).allocs),
            "allocs", "lower", /*gate=*/false);
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: zero pooled allocations — scratch vectors and\n"
         "retired reducer buffers live on the assigner and are recycled,\n"
         "so a steady-state repair touches the allocator not at all; the\n"
         "heap baseline re-builds its scratch every update.\n\n";
}

// --- O1d: greedy vs optimal (Hungarian) min-move matching ---
//
// Replays each trace under a periodic re-plan policy twice, identical
// except for the delta-matching backend. The matching only changes the
// churn accounting of each re-plan (the deployed schema is the
// planner's either way), so the two replays stay in lockstep and the
// per-trace gap is deterministic — gated like the churn series.

void PrintMatchingTable(bool smoke, CsvWriter* csv,
                        benchutil::BenchJson* json) {
  TablePrinter table(
      "O1d: min-move matching — greedy vs exact Hungarian churn");
  table.SetHeader({"trace", "replans", "greedy bytes", "hungarian bytes",
                   "gap bytes", "gap %"});
  csv->WriteRow({"table", "trace", "replans", "greedy_bytes",
                 "hungarian_bytes", "gap_bytes", "gap_pct"});
  for (const TraceShape& shape : MakeShapes(smoke)) {
    const online::UpdateTrace trace = wl::GenerateTrace(shape.config);
    const auto replay = [&](online::DeltaMatching matching) {
      online::OnlineConfig config;
      config.x2y = trace.x2y;
      config.capacity = trace.initial_capacity;
      config.policy_spec.name = "every-n";
      config.policy_spec.every_n = 16;
      config.delta_matching = matching;
      config.plan_options.use_portfolio = false;
      online::OnlineAssigner assigner(config);
      std::vector<std::optional<InputId>> live_of_trace;
      online::TraceIdTranslator translator(&live_of_trace);
      for (const online::Update& update : trace.updates) {
        online::Update live = update;
        if (!translator.Translate(&live)) continue;
        const auto result = assigner.Apply(live);
        if (live.kind == online::UpdateKind::kAddInput) {
          translator.RecordAdd(result.applied ? result.new_id
                                              : std::nullopt);
        }
      }
      return assigner.totals();
    };
    const online::OnlineTotals greedy =
        replay(online::DeltaMatching::kGreedy);
    const online::OnlineTotals exact =
        replay(online::DeltaMatching::kHungarian);
    const uint64_t gap =
        greedy.churn.bytes_moved - exact.churn.bytes_moved;
    const double gap_pct =
        greedy.churn.bytes_moved == 0
            ? 0.0
            : 100.0 * static_cast<double>(gap) /
                  static_cast<double>(greedy.churn.bytes_moved);
    table.AddRow({shape.name, TablePrinter::Fmt(greedy.replans),
                  TablePrinter::Fmt(greedy.churn.bytes_moved),
                  TablePrinter::Fmt(exact.churn.bytes_moved),
                  TablePrinter::Fmt(gap), TablePrinter::Fmt(gap_pct, 1)});
    csv->WriteRow({"O1d", shape.name, std::to_string(greedy.replans),
                   std::to_string(greedy.churn.bytes_moved),
                   std::to_string(exact.churn.bytes_moved),
                   std::to_string(gap), TablePrinter::Fmt(gap_pct, 1)});
    json->Add(shape.key + ".hungarian_bytes_moved",
              static_cast<double>(exact.churn.bytes_moved), "bytes");
    json->Add(shape.key + ".matching_gap_bytes", static_cast<double>(gap),
              "bytes", "lower", /*gate=*/false);
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: the exact matching never ships more bytes than\n"
         "greedy; the gap is the per-replan price of the greedy\n"
         "heuristic's conflicting-overlap mistakes, usually a few percent.\n\n";
}

// --- the pair-coverage hot path at m >= 10^4 ---
//
// A clique cover over g groups of 50 equal inputs (one reducer per
// group pair, exactly full at q) reaches m = 10,200 alive inputs with
// ~52M covered pairs — the regime where the coverage layout dominates
// repair latency. Each measured op is coverage-heavy:
//  * remove  — strips ~200 copies, each decrementing ~99 pair counts;
//  * shrink  — load-only resize (backend-independent control);
//  * regrow  — resize back up, whose uncovered-partner scan does one
//              coverage lookup per alive input.

constexpr std::size_t kHotGroupSize = 50;
constexpr std::size_t kHotGroups = 204;  // m = 10,200
constexpr InputSize kHotSize = 40;
constexpr InputSize kHotCapacity = 2 * kHotGroupSize * kHotSize;

MappingSchema CliqueCoverSchema() {
  MappingSchema schema;
  schema.reducers.reserve(kHotGroups * (kHotGroups - 1) / 2);
  for (std::size_t a = 0; a < kHotGroups; ++a) {
    for (std::size_t b = a + 1; b < kHotGroups; ++b) {
      Reducer reducer;
      reducer.reserve(2 * kHotGroupSize);
      for (std::size_t i = 0; i < kHotGroupSize; ++i) {
        reducer.push_back(static_cast<InputId>(a * kHotGroupSize + i));
        reducer.push_back(static_cast<InputId>(b * kHotGroupSize + i));
      }
      schema.reducers.push_back(std::move(reducer));
    }
  }
  return schema;
}

struct HotPathOutcome {
  double seed_ms = 0;
  double remove_p50 = 0, remove_p99 = 0;
  double regrow_p50 = 0, regrow_p99 = 0;
  double add_p50 = 0, add_p99 = 0;
  double footprint_mb = 0;
};

HotPathOutcome RunHotPath(online::PairCoverage::Backend backend,
                          online::PartnerSetBackend partner_backend) {
  online::OnlineConfig config;
  config.capacity = kHotCapacity;
  config.policy_spec.name = "never";
  config.coverage = backend;
  config.partner_set = partner_backend;
  online::OnlineAssigner assigner(config);

  const std::size_t m = kHotGroups * kHotGroupSize;
  const std::vector<InputSize> sizes(m, kHotSize);
  HotPathOutcome outcome;
  Stopwatch seed_watch;
  const bool seeded =
      assigner.Seed(sizes, {}, CliqueCoverSchema(), /*validate=*/false);
  outcome.seed_ms = seed_watch.ElapsedSeconds() * 1e3;
  if (!seeded) return outcome;
  outcome.footprint_mb =
      static_cast<double>(assigner.live_state().cover.footprint_bytes()) /
      (1024.0 * 1024.0);

  std::vector<double> remove_us;
  std::vector<double> regrow_us;
  std::vector<double> add_us;
  // Spread the ops across groups so no reducer degenerates.
  for (std::size_t k = 0; k < 120; ++k) {
    const InputId victim = static_cast<InputId>(k * 83 + 1);
    Stopwatch watch;
    assigner.RemoveInput(victim);
    remove_us.push_back(static_cast<double>(watch.ElapsedMicros()));

    const InputId resized = static_cast<InputId>(k * 83 + 2);
    assigner.ResizeInput(resized, kHotSize / 2);  // shrink: control op
    watch.Reset();
    assigner.ResizeInput(resized, kHotSize);      // regrow: lookup storm
    regrow_us.push_back(static_cast<double>(watch.ElapsedMicros()));

    if (k % 10 == 0) {
      // Add path: CoverStar over all m alive partners (the
      // uncovered-set backend's dominant loop), then remove the
      // arrival again so the instance stays comparable.
      watch.Reset();
      const auto added = assigner.AddInput(kHotSize);
      add_us.push_back(static_cast<double>(watch.ElapsedMicros()));
      if (added.new_id.has_value()) assigner.RemoveInput(*added.new_id);
    }
  }
  const SummaryStats removes = SummaryStats::Compute(remove_us);
  const SummaryStats regrows = SummaryStats::Compute(regrow_us);
  const SummaryStats adds = SummaryStats::Compute(add_us);
  outcome.remove_p50 = removes.Percentile(50.0);
  outcome.remove_p99 = removes.Percentile(99.0);
  outcome.regrow_p50 = regrows.Percentile(50.0);
  outcome.regrow_p99 = regrows.Percentile(99.0);
  outcome.add_p50 = adds.Percentile(50.0);
  outcome.add_p99 = adds.Percentile(99.0);
  return outcome;
}

void PrintHotPathTable(CsvWriter* csv) {
  TablePrinter table(
      "O1b: LiveState coverage + partner-set backends at m = 10,200 "
      "(52M pairs)");
  table.SetHeader({"backend", "seed ms", "remove p50 us", "remove p99 us",
                   "regrow p50 us", "regrow p99 us", "add p50 us",
                   "add p99 us", "cover MB"});
  csv->WriteRow({"table", "backend", "seed_ms", "remove_p50_us",
                 "remove_p99_us", "regrow_p50_us", "regrow_p99_us",
                 "add_p50_us", "add_p99_us", "cover_mb"});
  const struct {
    const char* name;
    online::PairCoverage::Backend coverage;
    online::PartnerSetBackend partner;
  } backends[] = {
      {"triangular+bitmap", online::PairCoverage::Backend::kTriangular,
       online::PartnerSetBackend::kBitmap},
      {"triangular+hashset", online::PairCoverage::Backend::kTriangular,
       online::PartnerSetBackend::kHashSet},
      {"hash (baseline)", online::PairCoverage::Backend::kHash,
       online::PartnerSetBackend::kHashSet},
  };
  for (const auto& entry : backends) {
    const HotPathOutcome outcome = RunHotPath(entry.coverage, entry.partner);
    table.AddRow({entry.name, TablePrinter::Fmt(outcome.seed_ms, 0),
                  TablePrinter::Fmt(outcome.remove_p50, 1),
                  TablePrinter::Fmt(outcome.remove_p99, 1),
                  TablePrinter::Fmt(outcome.regrow_p50, 1),
                  TablePrinter::Fmt(outcome.regrow_p99, 1),
                  TablePrinter::Fmt(outcome.add_p50, 1),
                  TablePrinter::Fmt(outcome.add_p99, 1),
                  TablePrinter::Fmt(outcome.footprint_mb, 0)});
    csv->WriteRow({"O1b", entry.name,
                   TablePrinter::Fmt(outcome.seed_ms, 0),
                   TablePrinter::Fmt(outcome.remove_p50, 1),
                   TablePrinter::Fmt(outcome.remove_p99, 1),
                   TablePrinter::Fmt(outcome.regrow_p50, 1),
                   TablePrinter::Fmt(outcome.regrow_p99, 1),
                   TablePrinter::Fmt(outcome.add_p50, 1),
                   TablePrinter::Fmt(outcome.add_p99, 1),
                   TablePrinter::Fmt(outcome.footprint_mb, 0)});
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: the dense triangular array turns every pair\n"
         "count into two arithmetic array accesses, so remove/regrow\n"
         "latency (and the rebuild inside seeding) drops well below the\n"
         "unordered_map baseline, at a fixed 4 bytes per alive pair.\n"
         "The add path scans every alive partner through the uncovered\n"
         "set: the rank bitmap (one array read per membership test)\n"
         "beats the unordered_set baseline's hash probes.\n\n";
}

void BM_IncrementalUpdate(benchmark::State& state) {
  wl::TraceConfig config;
  config.initial_inputs = static_cast<std::size_t>(state.range(0));
  config.steps = 200;
  config.seed = 41;
  const online::UpdateTrace trace = wl::GenerateTrace(config);
  for (auto _ : state) {
    online::OnlineConfig online_config;
    online_config.capacity = trace.initial_capacity;
    online_config.policy =
        std::make_shared<online::DriftThresholdPolicy>(1.5, 2.0, 128);
    online_config.plan_options.use_portfolio = false;
    online::OnlineAssigner assigner(online_config);
    for (const online::Update& update : trace.updates) {
      auto result = assigner.Apply(update);
      benchmark::DoNotOptimize(result);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.updates.size()));
}
BENCHMARK(BM_IncrementalUpdate)->Arg(40)->Arg(200);

void BM_ReplanEveryUpdate(benchmark::State& state) {
  wl::TraceConfig config;
  config.initial_inputs = static_cast<std::size_t>(state.range(0));
  config.steps = 200;
  config.seed = 42;
  const online::UpdateTrace trace = wl::GenerateTrace(config);
  for (auto _ : state) {
    online::OnlineConfig online_config;
    online_config.capacity = trace.initial_capacity;
    online_config.policy = std::make_shared<online::AlwaysReplanPolicy>();
    online_config.full_reassign_on_replan = true;
    online_config.plan_options.use_portfolio = false;
    online::OnlineAssigner assigner(online_config);
    for (const online::Update& update : trace.updates) {
      auto result = assigner.Apply(update);
      benchmark::DoNotOptimize(result);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.updates.size()));
}
BENCHMARK(BM_ReplanEveryUpdate)->Arg(40)->Arg(200);

void BM_MinMoveDelta(benchmark::State& state) {
  // Delta between two fresh plans of neighboring instances — the cost
  // of the escalation path's bookkeeping.
  wl::TraceConfig config;
  config.initial_inputs = static_cast<std::size_t>(state.range(0));
  config.steps = 1;
  config.seed = 43;
  const online::UpdateTrace trace = wl::GenerateTrace(config);
  online::OnlineConfig online_config;
  online_config.capacity = trace.initial_capacity;
  online_config.policy = std::make_shared<online::NeverReplanPolicy>();
  online::OnlineAssigner assigner(online_config);
  for (const online::Update& update : trace.updates) assigner.Apply(update);
  const MappingSchema schema = assigner.Schema();
  std::vector<InputSize> sizes;
  for (InputId id = 0; id < trace.updates.size(); ++id) {
    sizes.push_back(assigner.is_alive(id) ? assigner.size_of(id) : 1);
  }
  for (auto _ : state) {
    auto delta = online::MinMoveDelta(sizes, schema, schema);
    benchmark::DoNotOptimize(delta);
  }
}
BENCHMARK(BM_MinMoveDelta)->Arg(100)->Arg(400);

}  // namespace

int main(int argc, char** argv) {
  const benchutil::BenchArgs args = benchutil::ParseBenchArgs(&argc, argv);

  CsvWriter csv("bench_o1_online.csv");
  benchutil::BenchJson json("o1_online");
  PrintComparisonTable(args.smoke, &csv, &json);
  PrintSteadyAllocTable(&csv, &json);
  PrintMatchingTable(args.smoke, &csv, &json);
  // The m = 10,200 coverage sweep seeds ~52M pairs three times —
  // minutes of work, so the smoke leg skips it (its regressions are
  // covered by the gated churn series above plus the S1 smoke).
  if (!args.smoke) PrintHotPathTable(&csv);
  if (benchutil::EmitBenchJson(json, args) != 0) return 1;
  if (!args.smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
