// Experiment F4 — the skew-join motivation: hash partitioning vs the
// capacity-aware schema join across key skew.
//
// Expected shape: as the Zipf exponent grows, the hash join's max
// reducer load explodes (capacity violated, peak/mean load skyrockets)
// while the schema join keeps every schema reducer within q at the
// cost of extra shuffle bytes — exactly the tradeoff the paper's X2Y
// problem formalizes.

#include <benchmark/benchmark.h>

#include <iostream>

#include "join/skew_join.h"
#include "util/table.h"
#include "workload/relations.h"

namespace {

using namespace msp;

wl::Relation MakeRelation(double skew, uint64_t seed) {
  wl::RelationConfig config;
  config.num_tuples = 3'000;
  config.num_keys = 300;
  config.key_skew = skew;
  config.payload_lo = 16;
  config.payload_hi = 64;
  config.seed = seed;
  return wl::MakeSkewedRelation(config);
}

void PrintSkewTable() {
  TablePrinter table(
      "F4: hash join vs schema skew join (3000+3000 tuples, 300 keys, "
      "q = 6000 bytes, 16 hash reducers)");
  table.SetHeader({"zipf s", "variant", "reducers", "max load", "violates q",
                   "peak/mean", "shuffle bytes", "correct"});
  for (double skew : {0.4, 0.8, 1.2, 1.6, 2.0}) {
    const wl::Relation r = MakeRelation(skew, 100);
    const wl::Relation s = MakeRelation(skew, 200);
    const auto reference = join::NestedLoopJoin(r, s);
    join::SkewJoinConfig config;
    config.capacity = 6'000;
    config.hash_reducers = 16;

    const join::SkewJoinResult hash = join::HashJoinMapReduce(r, s, config);
    table.AddRow({TablePrinter::Fmt(skew, 1), "hash",
                  TablePrinter::Fmt(hash.metrics.num_reducers),
                  TablePrinter::Fmt(hash.metrics.max_reducer_bytes),
                  hash.metrics.capacity_violated ? "YES" : "no",
                  TablePrinter::Fmt(hash.metrics.reducer_peak_to_mean, 2),
                  TablePrinter::Fmt(hash.metrics.shuffle_bytes),
                  hash.triples == reference ? "yes" : "NO"});

    const auto schema = join::SkewJoinMapReduce(r, s, config);
    if (!schema.has_value()) continue;
    // Max load over the schema region only (hash buckets may still
    // aggregate several light keys).
    uint64_t schema_max = 0;
    for (std::size_t i = config.hash_reducers;
         i < schema->metrics.reducer_bytes.size(); ++i) {
      schema_max = std::max(schema_max, schema->metrics.reducer_bytes[i]);
    }
    table.AddRow({TablePrinter::Fmt(skew, 1), "schema",
                  TablePrinter::Fmt(schema->metrics.num_reducers),
                  TablePrinter::Fmt(schema_max),
                  schema_max > config.capacity ? "YES" : "no",
                  TablePrinter::Fmt(schema->metrics.reducer_peak_to_mean, 2),
                  TablePrinter::Fmt(schema->metrics.shuffle_bytes),
                  schema->triples == reference ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: under skew the hash join's hottest reducer\n"
               "blows through q (no parallelism on the heavy key); the\n"
               "schema join bounds every heavy-key reducer by q, paying a\n"
               "modest increase in shuffled bytes.\n\n";
}

void BM_SkewJoin(benchmark::State& state) {
  const double skew = static_cast<double>(state.range(0)) / 10.0;
  const wl::Relation r = MakeRelation(skew, 100);
  const wl::Relation s = MakeRelation(skew, 200);
  join::SkewJoinConfig config;
  config.capacity = 6'000;
  config.hash_reducers = 16;
  config.engine.num_workers = 2;
  for (auto _ : state) {
    auto result = join::SkewJoinMapReduce(r, s, config);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SkewJoin)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_HashJoin(benchmark::State& state) {
  const double skew = static_cast<double>(state.range(0)) / 10.0;
  const wl::Relation r = MakeRelation(skew, 100);
  const wl::Relation s = MakeRelation(skew, 200);
  join::SkewJoinConfig config;
  config.capacity = 6'000;
  config.hash_reducers = 16;
  config.engine.num_workers = 2;
  for (auto _ : state) {
    auto result = join::HashJoinMapReduce(r, s, config);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HashJoin)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSkewTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
