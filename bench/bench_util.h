// Shared helpers for the experiment benches.
//
// Every bench binary prints its paper-style tables on stdout (the
// regenerated "table/figure") and then runs google-benchmark timing
// series for the hot paths. See bench/README.md for the experiment
// index (what each binary reproduces and how to run it).

#ifndef MSP_BENCH_BENCH_UTIL_H_
#define MSP_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/a2a.h"
#include "core/bounds.h"
#include "core/instance.h"
#include "core/schema.h"
#include "core/x2y.h"

namespace msp::benchutil {

/// Evaluation of one solver against one instance.
struct SolverEval {
  uint64_t reducers = 0;
  uint64_t communication = 0;
  uint64_t max_load = 0;
  double replication = 0.0;
  double reducer_ratio = 0.0;  // reducers / LB reducers
  double comm_ratio = 0.0;     // communication / LB communication
};

/// Runs an A2A solver and scores it against the instance bounds.
/// Returns nullopt when the solver is inapplicable.
std::optional<SolverEval> EvaluateA2A(const A2AInstance& instance,
                                      const A2ALowerBounds& lb,
                                      A2AAlgorithm algorithm,
                                      const A2AOptions& options = {});

/// Runs an X2Y solver and scores it against the instance bounds.
std::optional<SolverEval> EvaluateX2Y(const X2YInstance& instance,
                                      const X2YLowerBounds& lb,
                                      X2YAlgorithm algorithm,
                                      const X2YOptions& options = {});

/// "1.43" or "inf" guard for ratios.
std::string RatioString(uint64_t value, uint64_t bound);

}  // namespace msp::benchutil

#endif  // MSP_BENCH_BENCH_UTIL_H_
