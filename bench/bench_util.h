// Shared helpers for the experiment benches.
//
// Every bench binary prints its paper-style tables on stdout (the
// regenerated "table/figure") and then runs google-benchmark timing
// series for the hot paths. See bench/README.md for the experiment
// index (what each binary reproduces and how to run it).

#ifndef MSP_BENCH_BENCH_UTIL_H_
#define MSP_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/a2a.h"
#include "core/bounds.h"
#include "core/instance.h"
#include "core/schema.h"
#include "core/x2y.h"

namespace msp::benchutil {

/// Accumulates bench metrics and writes the `BENCH_<id>.json`
/// trajectory file consumed by tools/benchgate.py. The schema is
/// stable (versioned) so committed baselines stay comparable:
///
///   {"bench": "c1_simulator", "schema_version": 1,
///    "git_sha": "<from GITHUB_SHA / MSP_GIT_SHA, else unknown>",
///    "metrics": [{"name": "...", "value": 0, "unit": "bytes",
///                 "better": "lower", "gate": true}, ...]}
///
/// Gated metrics participate in the benchgate regression comparison
/// and must therefore be deterministic (counts, bytes, churn — not
/// wall-clock). Timing metrics go in with gate=false: tracked for
/// trend plots, never failed on.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_id);

  /// `better` is "lower" or "higher".
  void Add(const std::string& name, double value, const std::string& unit,
           const std::string& better = "lower", bool gate = true);

  /// Writes the file; returns false (with `error`) on I/O failure.
  bool WriteTo(const std::string& path, std::string* error) const;

  /// GITHUB_SHA, else MSP_GIT_SHA, else "unknown".
  static std::string GitSha();

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
    std::string better;
    bool gate;
  };
  std::string bench_id_;
  std::vector<Metric> metrics_;
};

/// Common bench flags, stripped from argv in place so Google Benchmark
/// never sees them: `--smoke` and `--json=FILE`.
struct BenchArgs {
  bool smoke = false;
  std::string json_path;
};
BenchArgs ParseBenchArgs(int* argc, char** argv);

/// Writes the trajectory file when --json was given; prints the error
/// (and returns 1) when the write fails so CI catches a broken path.
int EmitBenchJson(const BenchJson& json, const BenchArgs& args);

/// Evaluation of one solver against one instance.
struct SolverEval {
  uint64_t reducers = 0;
  uint64_t communication = 0;
  uint64_t max_load = 0;
  double replication = 0.0;
  double reducer_ratio = 0.0;  // reducers / LB reducers
  double comm_ratio = 0.0;     // communication / LB communication
};

/// Runs an A2A solver and scores it against the instance bounds.
/// Returns nullopt when the solver is inapplicable.
std::optional<SolverEval> EvaluateA2A(const A2AInstance& instance,
                                      const A2ALowerBounds& lb,
                                      A2AAlgorithm algorithm,
                                      const A2AOptions& options = {});

/// Runs an X2Y solver and scores it against the instance bounds.
std::optional<SolverEval> EvaluateX2Y(const X2YInstance& instance,
                                      const X2YLowerBounds& lb,
                                      X2YAlgorithm algorithm,
                                      const X2YOptions& options = {});

/// "1.43" or "inf" guard for ratios.
std::string RatioString(uint64_t value, uint64_t bound);

}  // namespace msp::benchutil

#endif  // MSP_BENCH_BENCH_UTIL_H_
