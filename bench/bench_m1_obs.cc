// Experiment M1 — observability overhead: what instrumenting the hot
// paths costs, with and without a sink attached.
//
//  * Per-op table — ns/op for the primitive record operations: the
//    no-sink paths (null Registry* pointer test, disabled span) that
//    every component pays unconditionally, and the enabled paths
//    (counter inc, gauge set, histogram record, live span) paid only
//    when --metrics-out / --trace-out armed a sink.
//  * End-to-end table — the O1 incremental scenario (drift-policy
//    online replay) with observability off vs. fully armed (registry +
//    tracer), min-of-reps wall time and the relative overhead.
//
// `--smoke` shortens the sweeps, skips the Google Benchmark loops, and
// *fails* (non-zero exit) when the no-sink paths exceed a few ns/op or
// the armed end-to-end overhead exceeds 5% — the CI Release leg runs
// it on every push, so a regression that would make "instrument
// everything, always" unaffordable is caught at the PR.
//
// Results are mirrored to bench_m1_obs.csv in the working directory.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "online/assigner.h"
#include "online/trace.h"
#include "util/csv_writer.h"
#include "util/table.h"
#include "util/timer.h"
#include "workload/updates.h"

namespace {

using namespace msp;

// Loose ceilings for the smoke gate. The no-sink paths measure ~1ns on
// a quiet machine; 25ns still means "free at any realistic call rate"
// while absorbing CI-runner noise.
constexpr double kMaxNoSinkNsPerOp = 25.0;
constexpr double kMaxEnabledOverheadPct = 5.0;

struct OpCost {
  std::string name;
  double ns_per_op = 0;
  bool gated = false;  // participates in the --smoke no-sink gate
};

// Measures `op` over `iters` iterations, min of `reps` runs.
template <typename Fn>
double MeasureNsPerOp(uint64_t iters, int reps, Fn&& op) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    for (uint64_t i = 0; i < iters; ++i) op(i);
    best = std::min(best,
                    watch.ElapsedSeconds() * 1e9 /
                        static_cast<double>(iters));
  }
  return best;
}

std::vector<OpCost> MeasureOpCosts(bool smoke) {
  const uint64_t iters = smoke ? 2'000'000 : 20'000'000;
  const uint64_t span_iters = smoke ? 50'000 : 500'000;
  const int reps = 5;
  std::vector<OpCost> costs;

  // The no-sink paths: what instrumented components pay when nothing
  // is attached. `volatile` keeps the null test honest.
  obs::Counter* volatile null_counter = nullptr;
  obs::Histogram* volatile null_histogram = nullptr;
  uint64_t sink = 0;
  costs.push_back({"counter inc (no sink)",
                   MeasureNsPerOp(iters, reps,
                                  [&](uint64_t i) {
                                    obs::Counter* c = null_counter;
                                    if (c != nullptr) c->Inc();
                                    sink += i;
                                  }),
                   /*gated=*/true});
  costs.push_back({"histogram record (no sink)",
                   MeasureNsPerOp(iters, reps,
                                  [&](uint64_t i) {
                                    obs::Histogram* h = null_histogram;
                                    if (h != nullptr) h->Record(i);
                                    sink += i;
                                  }),
                   /*gated=*/true});
  obs::Tracer::Stop();
  costs.push_back({"span (tracing off)",
                   MeasureNsPerOp(iters, reps,
                                  [&](uint64_t i) {
                                    obs::Span span("m1.noop");
                                    sink += i + span.active();
                                  }),
                   /*gated=*/true});
  benchmark::DoNotOptimize(sink);

  // The enabled paths: a sink is attached and every op records.
  obs::Registry registry;
  obs::Counter* counter = registry.counter("m1.ops_total");
  obs::Gauge* gauge = registry.gauge("m1.depth");
  obs::Histogram* histogram = registry.histogram("m1.latency_us");
  costs.push_back({"counter inc (live)",
                   MeasureNsPerOp(iters, reps,
                                  [&](uint64_t) { counter->Inc(); })});
  costs.push_back(
      {"gauge set (live)",
       MeasureNsPerOp(iters, reps, [&](uint64_t i) {
         gauge->Set(static_cast<int64_t>(i));
       })});
  costs.push_back({"histogram record (live)",
                   MeasureNsPerOp(iters, reps, [&](uint64_t i) {
                     histogram->Record(i & 0xfffff);
                   })});
  costs.push_back(
      {"span begin/end (tracing on)",
       MeasureNsPerOp(span_iters, reps, [&](uint64_t i) {
         // Restart periodically so the event buffer stays bounded.
         if ((i & 0xffff) == 0) obs::Tracer::Start();
         MSP_SPAN("m1.live");
       })});
  obs::Tracer::Stop();
  obs::Tracer::Clear();
  return costs;
}

// --- end-to-end: the O1 incremental scenario ---

online::UpdateTrace IncrementalTrace(bool smoke) {
  wl::TraceConfig config;
  config.initial_inputs = 40;
  config.steps = smoke ? 400 : 2000;
  config.seed = 32;
  return wl::GenerateTrace(config);
}

online::OnlineConfig IncrementalConfig(const online::UpdateTrace& trace,
                                       obs::Registry* metrics) {
  online::OnlineConfig config;
  config.x2y = trace.x2y;
  config.capacity = trace.initial_capacity;
  config.policy_spec.name = "drift";
  config.plan_options.use_portfolio = false;
  config.metrics = metrics;
  return config;
}

double ReplaySeconds(const online::UpdateTrace& trace,
                     obs::Registry* metrics, bool traced) {
  if (traced) obs::Tracer::Start();
  online::OnlineAssigner assigner(IncrementalConfig(trace, metrics));
  Stopwatch watch;
  for (const online::Update& update : trace.updates) {
    assigner.Apply(update);
  }
  const double seconds = watch.ElapsedSeconds();
  if (traced) {
    obs::Tracer::Stop();
    obs::Tracer::Clear();
  }
  return seconds;
}

// Returns the relative overhead (percent) of the fully armed replay.
double PrintEndToEndTable(bool smoke, CsvWriter* csv) {
  const online::UpdateTrace trace = IncrementalTrace(smoke);
  const int reps = smoke ? 5 : 7;
  double off = 1e100;
  double armed = 1e100;
  for (int r = 0; r < reps; ++r) {
    off = std::min(off, ReplaySeconds(trace, nullptr, false));
    obs::Registry registry;
    armed = std::min(armed, ReplaySeconds(trace, &registry, true));
  }
  const double overhead_pct =
      off > 0 ? std::max(0.0, (armed - off) / off * 100.0) : 0.0;
  const double per_update_us =
      1e6 * off / static_cast<double>(trace.updates.size());

  TablePrinter table("M1b: armed vs. off — O1 incremental replay (" +
                     std::to_string(trace.updates.size()) + " updates)");
  table.SetHeader({"config", "seconds (min)", "us/update", "overhead"});
  csv->WriteRow({"table", "config", "seconds_min", "us_per_update",
                 "overhead_pct"});
  table.AddRow({"obs off", TablePrinter::Fmt(off, 4),
                TablePrinter::Fmt(per_update_us, 2), "-"});
  csv->WriteRow({"M1b", "off", TablePrinter::Fmt(off, 4),
                 TablePrinter::Fmt(per_update_us, 2), "0"});
  table.AddRow(
      {"registry + tracer", TablePrinter::Fmt(armed, 4),
       TablePrinter::Fmt(1e6 * armed /
                             static_cast<double>(trace.updates.size()),
                         2),
       TablePrinter::Fmt(overhead_pct, 1) + "%"});
  csv->WriteRow({"M1b", "armed", TablePrinter::Fmt(armed, 4),
                 TablePrinter::Fmt(
                     1e6 * armed / static_cast<double>(trace.updates.size()),
                     2),
                 TablePrinter::Fmt(overhead_pct, 1)});
  table.Print(std::cout);
  std::cout << "\nExpected shape: the armed run tracks the off run within\n"
               "a few percent — per-update repair work (microseconds)\n"
               "dwarfs a handful of relaxed atomic records.\n\n";
  return overhead_pct;
}

void BM_CounterInc(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter* counter = registry.counter("bm.ops_total");
  for (auto _ : state) counter->Inc();
}
BENCHMARK(BM_CounterInc);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram* histogram = registry.histogram("bm.latency_us");
  uint64_t i = 0;
  for (auto _ : state) histogram->Record(i++ & 0xfffff);
}
BENCHMARK(BM_HistogramRecord);

void BM_SpanDisabled(benchmark::State& state) {
  obs::Tracer::Stop();
  for (auto _ : state) {
    MSP_SPAN("bm.noop");
  }
}
BENCHMARK(BM_SpanDisabled);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;

  CsvWriter csv("bench_m1_obs.csv");
  const std::vector<OpCost> costs = MeasureOpCosts(smoke);
  TablePrinter table("M1: observability primitive costs (min of 5 reps)");
  table.SetHeader({"operation", "ns/op", "smoke gate"});
  csv.WriteRow({"table", "operation", "ns_per_op", "gated"});
  int failures = 0;
  for (const OpCost& cost : costs) {
    const bool over = cost.gated && cost.ns_per_op > kMaxNoSinkNsPerOp;
    if (over) ++failures;
    table.AddRow({cost.name, TablePrinter::Fmt(cost.ns_per_op, 2),
                  cost.gated ? (over ? "FAIL" : "<= 25ns ok") : "-"});
    csv.WriteRow({"M1", cost.name, TablePrinter::Fmt(cost.ns_per_op, 2),
                  cost.gated ? "1" : "0"});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: the three no-sink rows sit at a nanosecond\n"
               "or two (a pointer test / one relaxed load) — that is the\n"
               "entire cost of leaving instrumentation compiled in.\n\n";

  const double overhead_pct = PrintEndToEndTable(smoke, &csv);
  if (smoke && overhead_pct > kMaxEnabledOverheadPct) {
    std::cerr << "M1 SMOKE FAIL: armed overhead "
              << TablePrinter::Fmt(overhead_pct, 1) << "% exceeds "
              << TablePrinter::Fmt(kMaxEnabledOverheadPct, 1) << "%\n";
    ++failures;
  }
  if (failures > 0) {
    std::cerr << "M1 SMOKE FAIL: " << failures
              << " gate(s) exceeded their ceiling\n";
    return 1;
  }
  if (!smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
