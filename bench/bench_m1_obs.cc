// Experiment M1 — observability overhead: what instrumenting the hot
// paths costs, with and without a sink attached.
//
//  * Per-op table — ns/op for the primitive record operations: the
//    no-sink paths (null Registry* pointer test, disabled span, idle
//    AllocScope) that every component pays unconditionally, and the
//    enabled paths (counter inc, gauge set, histogram record, live
//    span, publishing AllocScope, flight-armed span) paid only when a
//    sink is armed.
//  * End-to-end table — the O1 incremental scenario (drift-policy
//    online replay) with observability off vs. armed (registry +
//    tracer) vs. the full self-diagnosis stack (registry + tracer +
//    flight recorder + alloc accounting), min-of-reps wall time and
//    the relative overhead.
//
// `--smoke` shortens the sweeps, skips the Google Benchmark loops, and
// *fails* (non-zero exit) when the no-sink paths exceed a few ns/op or
// either armed end-to-end overhead exceeds 5% — the CI Release leg
// runs it on every push, so a regression that would make "instrument
// everything, always" unaffordable is caught at the PR.
//
// Results are mirrored to bench_m1_obs.csv in the working directory;
// `--json=FILE` additionally writes the BENCH_m1_obs.json trajectory
// file (see tools/benchgate.py) whose gated metrics are the replay's
// deterministic allocation footprint.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/alloc.h"
#include "obs/flight.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "online/assigner.h"
#include "online/trace.h"
#include "util/csv_writer.h"
#include "util/table.h"
#include "util/timer.h"
#include "workload/updates.h"

namespace {

using namespace msp;

// Loose ceilings for the smoke gate. The no-sink paths measure ~1ns on
// a quiet machine; 25ns still means "free at any realistic call rate"
// while absorbing CI-runner noise.
constexpr double kMaxNoSinkNsPerOp = 25.0;
constexpr double kMaxEnabledOverheadPct = 5.0;

struct OpCost {
  std::string name;
  double ns_per_op = 0;
  bool gated = false;  // participates in the --smoke no-sink gate
};

// Measures `op` over `iters` iterations, min of `reps` runs.
template <typename Fn>
double MeasureNsPerOp(uint64_t iters, int reps, Fn&& op) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    for (uint64_t i = 0; i < iters; ++i) op(i);
    best = std::min(best,
                    watch.ElapsedSeconds() * 1e9 /
                        static_cast<double>(iters));
  }
  return best;
}

std::vector<OpCost> MeasureOpCosts(bool smoke) {
  const uint64_t iters = smoke ? 2'000'000 : 20'000'000;
  const uint64_t span_iters = smoke ? 50'000 : 500'000;
  const int reps = 5;
  std::vector<OpCost> costs;

  // The no-sink paths: what instrumented components pay when nothing
  // is attached. `volatile` keeps the null test honest.
  obs::Counter* volatile null_counter = nullptr;
  obs::Histogram* volatile null_histogram = nullptr;
  uint64_t sink = 0;
  costs.push_back({"counter inc (no sink)",
                   MeasureNsPerOp(iters, reps,
                                  [&](uint64_t i) {
                                    obs::Counter* c = null_counter;
                                    if (c != nullptr) c->Inc();
                                    sink += i;
                                  }),
                   /*gated=*/true});
  costs.push_back({"histogram record (no sink)",
                   MeasureNsPerOp(iters, reps,
                                  [&](uint64_t i) {
                                    obs::Histogram* h = null_histogram;
                                    if (h != nullptr) h->Record(i);
                                    sink += i;
                                  }),
                   /*gated=*/true});
  obs::Tracer::Stop();
  costs.push_back({"span (tracing off)",
                   MeasureNsPerOp(iters, reps,
                                  [&](uint64_t i) {
                                    obs::Span span("m1.noop");
                                    sink += i + span.active();
                                  }),
                   /*gated=*/true});
  // AllocScope with no counters attached: two thread-local reads at
  // construction, a null test at destruction — the price every
  // instrumented hot path pays when metrics are off.
  costs.push_back({"alloc scope (no counters)",
                   MeasureNsPerOp(iters, reps,
                                  [&](uint64_t i) {
                                    obs::AllocScope scope;
                                    sink += i;
                                  }),
                   /*gated=*/true});
  benchmark::DoNotOptimize(sink);

  // The enabled paths: a sink is attached and every op records.
  obs::Registry registry;
  obs::Counter* counter = registry.counter("m1.ops_total");
  obs::Gauge* gauge = registry.gauge("m1.depth");
  obs::Histogram* histogram = registry.histogram("m1.latency_us");
  costs.push_back({"counter inc (live)",
                   MeasureNsPerOp(iters, reps,
                                  [&](uint64_t) { counter->Inc(); })});
  costs.push_back(
      {"gauge set (live)",
       MeasureNsPerOp(iters, reps, [&](uint64_t i) {
         gauge->Set(static_cast<int64_t>(i));
       })});
  costs.push_back({"histogram record (live)",
                   MeasureNsPerOp(iters, reps, [&](uint64_t i) {
                     histogram->Record(i & 0xfffff);
                   })});
  obs::Counter* alloc_bytes = registry.counter("m1.alloc_bytes_total");
  obs::Counter* allocs = registry.counter("m1.allocs_total");
  costs.push_back(
      {"alloc scope (publishing)",
       MeasureNsPerOp(iters, reps, [&](uint64_t) {
         obs::AllocScope scope(alloc_bytes, allocs);
       })});
  costs.push_back(
      {"span begin/end (tracing on)",
       MeasureNsPerOp(span_iters, reps, [&](uint64_t i) {
         // Restart periodically so the event buffer stays bounded.
         if ((i & 0xffff) == 0) obs::Tracer::Start();
         MSP_SPAN("m1.live");
       })});
  obs::Tracer::Stop();
  obs::Tracer::Clear();
  // Flight-recorder sink only: each span writes two fixed-size slots
  // into the per-thread ring (no allocation, no lock).
  obs::FlightRecorder::Arm();
  costs.push_back(
      {"span begin/end (flight armed)",
       MeasureNsPerOp(span_iters, reps, [&](uint64_t) {
         MSP_SPAN("m1.flight");
       })});
  obs::FlightRecorder::Disarm();
  return costs;
}

// --- end-to-end: the O1 incremental scenario ---

online::UpdateTrace IncrementalTrace(bool smoke) {
  wl::TraceConfig config;
  config.initial_inputs = 40;
  config.steps = smoke ? 400 : 2000;
  config.seed = 32;
  return wl::GenerateTrace(config);
}

online::OnlineConfig IncrementalConfig(const online::UpdateTrace& trace,
                                       obs::Registry* metrics) {
  online::OnlineConfig config;
  config.x2y = trace.x2y;
  config.capacity = trace.initial_capacity;
  config.policy_spec.name = "drift";
  config.plan_options.use_portfolio = false;
  config.metrics = metrics;
  return config;
}

enum class ObsMode { kOff, kArmed, kSelfDiagnosis };

double ReplaySeconds(const online::UpdateTrace& trace,
                     obs::Registry* metrics, ObsMode mode) {
  if (mode != ObsMode::kOff) obs::Tracer::Start();
  if (mode == ObsMode::kSelfDiagnosis) obs::FlightRecorder::Arm();
  online::OnlineAssigner assigner(IncrementalConfig(trace, metrics));
  Stopwatch watch;
  for (const online::Update& update : trace.updates) {
    assigner.Apply(update);
  }
  const double seconds = watch.ElapsedSeconds();
  if (mode == ObsMode::kSelfDiagnosis) obs::FlightRecorder::Disarm();
  if (mode != ObsMode::kOff) {
    obs::Tracer::Stop();
    obs::Tracer::Clear();
  }
  return seconds;
}

// Returns the worst relative overhead (percent) across the armed
// configs; both must clear the 5% ceiling under --smoke.
double PrintEndToEndTable(bool smoke, CsvWriter* csv,
                          benchutil::BenchJson* json) {
  const online::UpdateTrace trace = IncrementalTrace(smoke);
  const int reps = smoke ? 5 : 7;
  double off = 1e100;
  double armed = 1e100;
  double diag = 1e100;
  for (int r = 0; r < reps; ++r) {
    off = std::min(off, ReplaySeconds(trace, nullptr, ObsMode::kOff));
    obs::Registry registry;
    armed = std::min(armed,
                     ReplaySeconds(trace, &registry, ObsMode::kArmed));
    obs::Registry diag_registry;
    diag = std::min(diag, ReplaySeconds(trace, &diag_registry,
                                        ObsMode::kSelfDiagnosis));
  }
  const auto overhead = [off](double seconds) {
    return off > 0 ? std::max(0.0, (seconds - off) / off * 100.0) : 0.0;
  };
  const auto per_update = [&trace](double seconds) {
    return 1e6 * seconds / static_cast<double>(trace.updates.size());
  };

  TablePrinter table("M1b: armed vs. off — O1 incremental replay (" +
                     std::to_string(trace.updates.size()) + " updates)");
  table.SetHeader({"config", "seconds (min)", "us/update", "overhead"});
  csv->WriteRow({"table", "config", "seconds_min", "us_per_update",
                 "overhead_pct"});
  table.AddRow({"obs off", TablePrinter::Fmt(off, 4),
                TablePrinter::Fmt(per_update(off), 2), "-"});
  csv->WriteRow({"M1b", "off", TablePrinter::Fmt(off, 4),
                 TablePrinter::Fmt(per_update(off), 2), "0"});
  const struct {
    const char* name;
    const char* csv_key;
    double seconds;
  } configs[] = {
      {"registry + tracer", "armed", armed},
      {"registry + tracer + flight + alloc", "self-diagnosis", diag},
  };
  for (const auto& config : configs) {
    table.AddRow({config.name, TablePrinter::Fmt(config.seconds, 4),
                  TablePrinter::Fmt(per_update(config.seconds), 2),
                  TablePrinter::Fmt(overhead(config.seconds), 1) + "%"});
    csv->WriteRow({"M1b", config.csv_key,
                   TablePrinter::Fmt(config.seconds, 4),
                   TablePrinter::Fmt(per_update(config.seconds), 2),
                   TablePrinter::Fmt(overhead(config.seconds), 1)});
    json->Add(std::string("replay.overhead_pct.") + config.csv_key,
              overhead(config.seconds), "percent", "lower",
              /*gate=*/false);
  }
  json->Add("replay.us_per_update.off", per_update(off), "us", "lower",
            /*gate=*/false);
  table.Print(std::cout);
  std::cout << "\nExpected shape: both armed runs track the off run within\n"
               "a few percent — per-update repair work (microseconds)\n"
               "dwarfs the relaxed atomic records and ring writes.\n\n";
  return std::max(overhead(armed), overhead(diag));
}

// Deterministic allocation footprint of one replay: the counting
// allocator makes "how much does the repair path allocate" an exact,
// machine-independent number, so it IS gated — an allocation
// regression on the hot path fails CI even when timing noise hides it.
void EmitAllocFootprint(bool smoke, benchutil::BenchJson* json) {
  if (!obs::AllocCountingActive()) return;  // sanitizer build
  const online::UpdateTrace trace = IncrementalTrace(smoke);
  const obs::AllocTotals before = obs::ThreadAllocTotals();
  ReplaySeconds(trace, nullptr, ObsMode::kOff);
  const obs::AllocTotals after = obs::ThreadAllocTotals();
  const double updates = static_cast<double>(trace.updates.size());
  json->Add("replay.alloc_bytes",
            static_cast<double>(after.bytes - before.bytes), "bytes");
  json->Add("replay.allocs",
            static_cast<double>(after.allocs - before.allocs), "allocs");
  json->Add("replay.allocs_per_update",
            static_cast<double>(after.allocs - before.allocs) / updates,
            "allocs", "lower", /*gate=*/false);
}

void BM_CounterInc(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter* counter = registry.counter("bm.ops_total");
  for (auto _ : state) counter->Inc();
}
BENCHMARK(BM_CounterInc);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram* histogram = registry.histogram("bm.latency_us");
  uint64_t i = 0;
  for (auto _ : state) histogram->Record(i++ & 0xfffff);
}
BENCHMARK(BM_HistogramRecord);

void BM_SpanDisabled(benchmark::State& state) {
  obs::Tracer::Stop();
  for (auto _ : state) {
    MSP_SPAN("bm.noop");
  }
}
BENCHMARK(BM_SpanDisabled);

}  // namespace

int main(int argc, char** argv) {
  const benchutil::BenchArgs args = benchutil::ParseBenchArgs(&argc, argv);
  const bool smoke = args.smoke;

  CsvWriter csv("bench_m1_obs.csv");
  benchutil::BenchJson json("m1_obs");
  const std::vector<OpCost> costs = MeasureOpCosts(smoke);
  TablePrinter table("M1: observability primitive costs (min of 5 reps)");
  table.SetHeader({"operation", "ns/op", "smoke gate"});
  csv.WriteRow({"table", "operation", "ns_per_op", "gated"});
  int failures = 0;
  for (const OpCost& cost : costs) {
    const bool over = cost.gated && cost.ns_per_op > kMaxNoSinkNsPerOp;
    if (over) ++failures;
    table.AddRow({cost.name, TablePrinter::Fmt(cost.ns_per_op, 2),
                  cost.gated ? (over ? "FAIL" : "<= 25ns ok") : "-"});
    csv.WriteRow({"M1", cost.name, TablePrinter::Fmt(cost.ns_per_op, 2),
                  cost.gated ? "1" : "0"});
    std::string key = "op.";
    for (const char c : cost.name) {
      if (c == '(' || c == ')' || c == '/') continue;
      key.push_back(c == ' ' ? '_' : c);
    }
    json.Add(key, cost.ns_per_op, "ns", "lower", /*gate=*/false);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: the three no-sink rows sit at a nanosecond\n"
               "or two (a pointer test / one relaxed load) — that is the\n"
               "entire cost of leaving instrumentation compiled in.\n\n";

  const double overhead_pct = PrintEndToEndTable(smoke, &csv, &json);
  if (smoke && overhead_pct > kMaxEnabledOverheadPct) {
    std::cerr << "M1 SMOKE FAIL: armed overhead "
              << TablePrinter::Fmt(overhead_pct, 1) << "% exceeds "
              << TablePrinter::Fmt(kMaxEnabledOverheadPct, 1) << "%\n";
    ++failures;
  }
  EmitAllocFootprint(smoke, &json);
  if (benchutil::EmitBenchJson(json, args) != 0) ++failures;
  if (failures > 0) {
    std::cerr << "M1 SMOKE FAIL: " << failures
              << " gate(s) exceeded their ceiling\n";
    return 1;
  }
  if (!smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
