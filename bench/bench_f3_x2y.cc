// Experiment F3 — X2Y with different-sized, skewed sets: bin-pack
// cross vs the naive per-pair baseline vs the lower bound, across q.
//
// |X| = 1500 Zipf-sized inputs (the heavy relation), |Y| = 300 uniform
// inputs. Expected shape: z ~ 4 W_X W_Y / q^2 for the bin-pair grid,
// within a small constant of the LB; the tuned capacity split never
// loses to the fixed q/2 split.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "core/bounds.h"
#include "core/x2y.h"
#include "util/table.h"
#include "workload/sizes.h"

namespace {

using namespace msp;
using benchutil::EvaluateX2Y;

void PrintX2YTable() {
  const auto x_sizes = wl::ZipfSizes(1'500, 2, 100, 1.2, 31);
  const auto y_sizes = wl::UniformSizes(300, 1, 60, 32);

  TablePrinter table(
      "F3: X2Y reducers vs capacity q (|X| = 1500 Zipf sizes, |Y| = 300 "
      "uniform)");
  table.SetHeader({"q", "naive m*n", "cross", "tuned", "big-small",
                   "LB", "tuned/LB"});
  for (InputSize q : {210u, 300u, 450u, 700u, 1'000u, 1'500u, 2'200u,
                      3'300u, 5'000u}) {
    auto instance = X2YInstance::Create(x_sizes, y_sizes, q);
    if (!instance.has_value() || !instance->IsFeasible()) continue;
    const X2YLowerBounds lb = X2YLowerBounds::Compute(*instance);
    const auto cross = EvaluateX2Y(*instance, lb, X2YAlgorithm::kBinPackCross);
    const auto tuned =
        EvaluateX2Y(*instance, lb, X2YAlgorithm::kBinPackCrossTuned);
    const auto big_small = EvaluateX2Y(*instance, lb, X2YAlgorithm::kBigSmall);
    table.AddRow({TablePrinter::Fmt(uint64_t{q}),
                  TablePrinter::Fmt(instance->NumOutputs()),
                  cross ? TablePrinter::Fmt(cross->reducers) : "-",
                  tuned ? TablePrinter::Fmt(tuned->reducers) : "-",
                  big_small ? TablePrinter::Fmt(big_small->reducers) : "-",
                  TablePrinter::Fmt(lb.reducers),
                  tuned ? TablePrinter::Fmt(tuned->reducer_ratio, 2) : "-"});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: the bin-pair grid decays ~1/q^2 and stays\n"
               "within a small constant of the LB; tuned <= fixed split;\n"
               "naive m*n = 450,000 is flat and absurdly larger.\n\n";
}

void PrintCommTable() {
  const auto x_sizes = wl::ZipfSizes(1'500, 2, 100, 1.2, 31);
  const auto y_sizes = wl::UniformSizes(300, 1, 60, 32);
  TablePrinter table("F3b: X2Y communication vs capacity q (same instance)");
  table.SetHeader({"q", "comm (tuned)", "comm LB", "ratio", "repl rate"});
  for (InputSize q : {300u, 700u, 1'500u, 3'300u}) {
    auto instance = X2YInstance::Create(x_sizes, y_sizes, q);
    if (!instance.has_value() || !instance->IsFeasible()) continue;
    const X2YLowerBounds lb = X2YLowerBounds::Compute(*instance);
    const auto tuned =
        EvaluateX2Y(*instance, lb, X2YAlgorithm::kBinPackCrossTuned);
    if (!tuned.has_value()) continue;
    table.AddRow({TablePrinter::Fmt(uint64_t{q}),
                  TablePrinter::Fmt(tuned->communication),
                  TablePrinter::Fmt(lb.communication),
                  TablePrinter::Fmt(tuned->comm_ratio, 2),
                  TablePrinter::Fmt(tuned->replication, 2)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void BM_X2YTuned(benchmark::State& state) {
  const auto x_sizes = wl::ZipfSizes(1'500, 2, 100, 1.2, 31);
  const auto y_sizes = wl::UniformSizes(300, 1, 60, 32);
  auto instance = X2YInstance::Create(
      x_sizes, y_sizes, static_cast<InputSize>(state.range(0)));
  for (auto _ : state) {
    auto schema = SolveX2YBinPackCrossTuned(*instance);
    benchmark::DoNotOptimize(schema);
  }
}
BENCHMARK(BM_X2YTuned)->Arg(300)->Arg(1'500)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintX2YTable();
  PrintCommTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
