// Experiment P1 — the planning service: cold vs warm plan latency and
// portfolio vs auto-dispatch schema quality.
//
// Cold plans canonicalize, miss the cache, and run the full algorithm
// portfolio; warm plans canonicalize, hit the sharded LRU cache, and
// only rewrite the cached canonical schema back to the request's input
// ids. Expected shape: warm plans are orders of magnitude faster than
// cold plans (the hit path does no solving), and the portfolio never
// returns more reducers than the auto dispatcher — occasionally fewer,
// which is the point of running all constructions.
//
// Results are mirrored to bench_p1_planner.csv in the working
// directory.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/a2a.h"
#include "core/instance.h"
#include "planner/service.h"
#include "util/csv_writer.h"
#include "util/table.h"
#include "util/timer.h"
#include "workload/sizes.h"

namespace {

using namespace msp;

struct Shape {
  std::string name;
  std::vector<InputSize> sizes;
  InputSize q;
};

std::vector<Shape> MakeShapes() {
  return {
      {"uniform m=200", wl::UniformSizes(200, 2, 30, 11), 90},
      {"uniform m=2000", wl::UniformSizes(2000, 2, 30, 12), 90},
      {"zipf m=200", wl::ZipfSizes(200, 2, 45, 1.3, 13), 100},
      {"zipf m=2000", wl::ZipfSizes(2000, 2, 45, 1.3, 14), 100},
      {"equal m=1000", wl::EqualSizes(1000, 4), 40},
  };
}

void PrintColdWarmTable(CsvWriter* csv) {
  TablePrinter table("P1a: cold (portfolio solve) vs warm (cache hit) plans");
  table.SetHeader(
      {"instance", "cold us", "warm us", "speedup", "warm hit"});
  csv->WriteRow({"table", "instance", "cold_us", "warm_us", "speedup",
                 "warm_hit"});
  for (const Shape& shape : MakeShapes()) {
    const auto in = A2AInstance::Create(shape.sizes, shape.q).value();
    planner::PlannerService service;
    const planner::PlanResult cold = service.Plan(in);
    // Re-plan several times; every call after the first must hit.
    uint64_t warm_us = 0;
    constexpr int kWarmRuns = 20;
    planner::PlanResult warm;
    Stopwatch watch;
    for (int i = 0; i < kWarmRuns; ++i) warm = service.Plan(in);
    // Clamp to 1us so sub-microsecond warm plans don't read as 0x.
    warm_us = std::max<uint64_t>(1, watch.ElapsedMicros() / kWarmRuns);
    const double speedup = static_cast<double>(cold.plan_micros) /
                           static_cast<double>(warm_us);
    table.AddRow({shape.name, TablePrinter::Fmt(cold.plan_micros),
                  TablePrinter::Fmt(warm_us),
                  TablePrinter::Fmt(speedup, 1) + "x",
                  warm.cache_hit ? "yes" : "NO"});
    csv->WriteRow({"P1a", shape.name, std::to_string(cold.plan_micros),
                   std::to_string(warm_us), TablePrinter::Fmt(speedup, 1),
                   warm.cache_hit ? "1" : "0"});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: warm plans skip all solving, so the\n"
               "speedup grows with instance size; 'warm hit' must be yes\n"
               "on every row.\n\n";
}

void PrintQualityTable(CsvWriter* csv) {
  TablePrinter table("P1b: portfolio winner vs auto dispatcher");
  table.SetHeader({"instance", "auto z", "portfolio z", "winner",
                   "comm ratio"});
  csv->WriteRow({"table", "instance", "auto_reducers",
                 "portfolio_reducers", "winner", "comm_ratio"});
  for (const Shape& shape : MakeShapes()) {
    const auto in = A2AInstance::Create(shape.sizes, shape.q).value();
    auto auto_schema = SolveA2AAuto(in);
    if (!auto_schema.has_value()) continue;
    planner::ApplyMergePass(in, &*auto_schema);
    const SchemaStats auto_stats = SchemaStats::Compute(in, *auto_schema);

    planner::PlannerService service;
    const planner::PlanResult plan = service.Plan(in);
    const double comm_ratio =
        auto_stats.communication_cost == 0
            ? 0.0
            : static_cast<double>(plan.stats.communication_cost) /
                  static_cast<double>(auto_stats.communication_cost);
    table.AddRow({shape.name, TablePrinter::Fmt(auto_stats.num_reducers),
                  TablePrinter::Fmt(plan.stats.num_reducers), plan.algorithm,
                  TablePrinter::Fmt(comm_ratio)});
    csv->WriteRow({"P1b", shape.name,
                   std::to_string(auto_stats.num_reducers),
                   std::to_string(plan.stats.num_reducers), plan.algorithm,
                   TablePrinter::Fmt(comm_ratio)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: portfolio z <= auto z on every row (auto\n"
               "is one of the candidates), with the winner column showing\n"
               "which construction beat the dispatcher's pick.\n\n";
}

void BM_PlanCold(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const auto in =
      A2AInstance::Create(wl::ZipfSizes(m, 2, 45, 1.3, 21), 100).value();
  planner::PlannerService service;
  for (auto _ : state) {
    service.ClearCache();
    auto result = service.Plan(in);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PlanCold)->Arg(200)->Arg(2'000);

void BM_PlanWarm(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const auto in =
      A2AInstance::Create(wl::ZipfSizes(m, 2, 45, 1.3, 22), 100).value();
  planner::PlannerService service;
  service.Plan(in);  // prime the cache
  for (auto _ : state) {
    auto result = service.Plan(in);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PlanWarm)->Arg(200)->Arg(2'000);

void BM_PlanManyBatch(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::vector<A2AInstance> instances;
  instances.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    instances.push_back(
        A2AInstance::Create(wl::ZipfSizes(200, 2, 45, 1.3, i + 1), 100)
            .value());
  }
  planner::PlannerService service;
  for (auto _ : state) {
    auto results = service.PlanMany(instances);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_PlanManyBatch)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  CsvWriter csv("bench_p1_planner.csv");
  PrintColdWarmTable(&csv);
  PrintQualityTable(&csv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
