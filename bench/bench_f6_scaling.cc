// Experiment F6 — the assignment algorithms themselves are cheap: the
// schema construction scales near-linearly (n log n) in the number of
// inputs, so the NP-completeness of the problem is not a practical
// obstacle when using the paper's approximations.

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/a2a.h"
#include "core/bounds.h"
#include "core/instance.h"
#include "util/table.h"
#include "util/timer.h"
#include "workload/sizes.h"

namespace {

using namespace msp;

// Capacity chosen so the construction yields ~10 bins regardless of m
// (keeps schema materialization memory bounded while m scales).
InputSize CapacityFor(const std::vector<InputSize>& sizes) {
  uint64_t total = 0;
  for (auto w : sizes) total += w;
  return static_cast<InputSize>(total / 5 + 1);
}

void PrintScalingTable() {
  TablePrinter table(
      "F6: schema construction wall time vs m (Zipf sizes, q = W/5)");
  table.SetHeader({"m", "construct ms", "reducers", "LB", "ratio"});
  for (std::size_t m : {10'000u, 50'000u, 100'000u, 500'000u, 1'000'000u}) {
    const auto sizes = wl::ZipfSizes(m, 1, 50, 1.1, 7'000 + m);
    const InputSize q = CapacityFor(sizes);
    auto instance = A2AInstance::Create(sizes, q);
    Stopwatch timer;
    const auto schema = SolveA2AAuto(*instance);
    const double ms = timer.ElapsedSeconds() * 1e3;
    if (!schema.has_value()) continue;
    const A2ALowerBounds lb = A2ALowerBounds::Compute(*instance);
    table.AddRow({TablePrinter::Fmt(uint64_t{m}), TablePrinter::Fmt(ms, 1),
                  TablePrinter::Fmt(uint64_t{schema->num_reducers()}),
                  TablePrinter::Fmt(lb.reducers),
                  TablePrinter::Fmt(static_cast<double>(
                                        schema->num_reducers()) /
                                        static_cast<double>(lb.reducers),
                                    2)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: near-linear growth in m (the FFD sort\n"
               "dominates); a million inputs are assigned in well under a\n"
               "second on one core.\n\n";
}

void BM_ConstructSchema(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const auto sizes = wl::ZipfSizes(m, 1, 50, 1.1, 7'000 + m);
  auto instance = A2AInstance::Create(sizes, CapacityFor(sizes));
  for (auto _ : state) {
    auto schema = SolveA2AAuto(*instance);
    benchmark::DoNotOptimize(schema);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * m);
}
BENCHMARK(BM_ConstructSchema)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintScalingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
