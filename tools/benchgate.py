#!/usr/bin/env python3
"""Bench-trajectory regression gate.

Compares freshly produced BENCH_<id>.json files (written by the bench
binaries' --json=FILE flag) against the committed baselines in
bench/baselines/. Only metrics with "gate": true participate — those
are deterministic series (counts, bytes, churn), so a >15% drift in
the "worse" direction is a real regression, not machine noise. Metrics
with "gate": false are trajectory-only: printed, never failed on.

Usage:
    benchgate.py --baseline bench/baselines --current build
    benchgate.py --self-test

Exit status: 0 when every gated metric holds, 1 on any regression,
missing file, or missing gated metric.
"""

import argparse
import glob
import json
import os
import sys
import tempfile

SCHEMA_VERSION = 1
DEFAULT_THRESHOLD = 0.15


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {doc.get('schema_version')} "
            f"(expected {SCHEMA_VERSION})")
    return doc


def regression(base, cur, better):
    """Relative change in the *worse* direction (negative = improved)."""
    if base == 0:
        # An exact-zero baseline (reconciliation gap, mismatch count)
        # must stay exactly zero; any appearance is a full regression.
        if cur == base:
            return 0.0
        worse = cur > base if better == "lower" else cur < base
        return float("inf") if worse else 0.0
    rel = (cur - base) / abs(base)
    return rel if better == "lower" else -rel


def compare(baseline_doc, current_doc, threshold):
    """Returns (rows, failures) comparing one bench's two documents."""
    current = {m["name"]: m for m in current_doc.get("metrics", [])}
    rows = []
    failures = 0
    for metric in baseline_doc.get("metrics", []):
        name = metric["name"]
        gated = bool(metric.get("gate", False))
        cur = current.get(name)
        if cur is None:
            if gated:
                rows.append((name, metric["value"], None, None, "MISSING"))
                failures += 1
            continue
        reg = regression(metric["value"], cur["value"],
                         metric.get("better", "lower"))
        if not gated:
            status = "info"
        elif reg > threshold:
            status = "FAIL"
            failures += 1
        else:
            status = "ok"
        rows.append((name, metric["value"], cur["value"], reg, status))
    return rows, failures


def run_gate(baseline_dir, current_dir, threshold, out=sys.stdout):
    baselines = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json")))
    if not baselines:
        print(f"benchgate: no baselines under {baseline_dir}", file=out)
        return 1
    total_failures = 0
    for baseline_path in baselines:
        name = os.path.basename(baseline_path)
        current_path = os.path.join(current_dir, name)
        baseline_doc = load(baseline_path)
        print(f"== {baseline_doc.get('bench', name)} ==", file=out)
        if not os.path.exists(current_path):
            print(f"  MISSING current file: {current_path}", file=out)
            total_failures += 1
            continue
        rows, failures = compare(baseline_doc, load(current_path), threshold)
        total_failures += failures
        for name_, base, cur, reg, status in rows:
            if status == "MISSING":
                print(f"  {status:8} {name_}: gated metric absent "
                      f"(baseline {base:g})", file=out)
            else:
                print(f"  {status:8} {name_}: {base:g} -> {cur:g} "
                      f"({reg:+.1%})", file=out)
    if total_failures:
        print(f"benchgate: {total_failures} failure(s) "
              f"(threshold {threshold:.0%})", file=out)
    else:
        print(f"benchgate: all gated metrics within {threshold:.0%}",
              file=out)
    return 1 if total_failures else 0


# ---------------------------------------------------------------------
# Self-test: synthesizes baseline/current pairs — including an injected
# regression — and asserts the gate's verdict on each. Run as a ctest
# entry so the gate itself cannot silently rot.

def _doc(bench, metrics):
    return {
        "bench": bench,
        "schema_version": SCHEMA_VERSION,
        "git_sha": "selftest",
        "metrics": [
            {"name": n, "value": v, "unit": "u", "better": b, "gate": g}
            for (n, v, b, g) in metrics
        ],
    }


def _write(dirname, bench, metrics):
    path = os.path.join(dirname, f"BENCH_{bench}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(_doc(bench, metrics), fh)


def _scenario(name, baseline_metrics, current_metrics, expect_fail):
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "base")
        cur_dir = os.path.join(tmp, "cur")
        os.mkdir(base_dir)
        os.mkdir(cur_dir)
        _write(base_dir, "t1", baseline_metrics)
        if current_metrics is not None:
            _write(cur_dir, "t1", current_metrics)
        with open(os.devnull, "w", encoding="utf-8") as devnull:
            code = run_gate(base_dir, cur_dir, DEFAULT_THRESHOLD,
                            out=devnull)
    ok = (code != 0) == expect_fail
    verdict = "ok" if ok else "WRONG VERDICT"
    print(f"  self-test [{name}]: exit={code} "
          f"expected {'fail' if expect_fail else 'pass'} -> {verdict}")
    return ok


def self_test():
    print("benchgate self-test:")
    ok = True
    # Identical runs pass.
    metrics = [("a.bytes", 1000.0, "lower", True),
               ("a.rate", 50.0, "higher", False)]
    ok &= _scenario("identical", metrics, metrics, expect_fail=False)
    # Injected +30% regression on a gated lower-is-better metric fails.
    ok &= _scenario("injected regression", metrics,
                    [("a.bytes", 1300.0, "lower", True),
                     ("a.rate", 50.0, "higher", False)],
                    expect_fail=True)
    # +30% on an ungated metric is informational only.
    ok &= _scenario("ungated drift", metrics,
                    [("a.bytes", 1000.0, "lower", True),
                     ("a.rate", 20.0, "higher", False)],
                    expect_fail=False)
    # An improvement (lower bytes) passes.
    ok &= _scenario("improvement", metrics,
                    [("a.bytes", 500.0, "lower", True),
                     ("a.rate", 50.0, "higher", False)],
                    expect_fail=False)
    # Higher-is-better drop fails.
    ok &= _scenario("throughput drop", [("b.hits", 100.0, "higher", True)],
                    [("b.hits", 60.0, "higher", True)], expect_fail=True)
    # Exact-zero baseline must stay zero.
    ok &= _scenario("zero stays zero", [("c.gap", 0.0, "lower", True)],
                    [("c.gap", 1.0, "lower", True)], expect_fail=True)
    ok &= _scenario("zero ok", [("c.gap", 0.0, "lower", True)],
                    [("c.gap", 0.0, "lower", True)], expect_fail=False)
    # A gated metric vanishing from the current run fails.
    ok &= _scenario("missing gated metric", metrics,
                    [("a.rate", 50.0, "higher", False)], expect_fail=True)
    # A missing current file fails.
    ok &= _scenario("missing file", metrics, None, expect_fail=True)
    print("benchgate self-test:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baselines",
                        help="directory holding committed BENCH_*.json")
    parser.add_argument("--current", default="build",
                        help="directory holding freshly produced files")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="allowed relative drift (default 0.15)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate's own verdicts and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return run_gate(args.baseline, args.current, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
